"""Crash-fault supervision: watchdog, chaos plans, degraded stores.

The robustness contract is byte-identity under fire: a SIGKILL'd pool
worker, a hung cell, a full disk or a torn journal must never change
result bytes — recovery re-derives exactly what an undisturbed run
would have produced, and budgets turn unrecoverable cells into the
normal degraded-cell accounting (e = 0) instead of a crashed process.
"""

import errno
import json
import multiprocessing
import os
import subprocess
import sys
import time

import pytest

from repro.chaos import (
    CHAOS_ACTIONS,
    CHAOS_PLAN_ENV,
    CHAOS_POINTS,
    ChaosEvent,
    ChaosPlan,
    chaos_armed,
    chaos_strike,
    run_chaos_suite,
)
from repro.core.types import DeviceKind, Precision
from repro.errors import ConfigError, WorkerLost
from repro.harness import Experiment
from repro.harness.engine import (
    LOCK_GRACE_SECONDS,
    ResultCache,
    RunOptions,
    SweepEngine,
    WatchdogPolicy,
)
from repro.harness.journal import RunJournal, RunRegistry, fsck_store
from repro.harness.report import render_result_set
from repro.service import CampaignDaemon, CampaignService, CampaignSpec
from repro.service.service import MAX_CAMPAIGN_RESTARTS


def small_exp(**kw):
    defaults = dict(
        exp_id="chaos-gemm", title="chaos test", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=("julia", "numba"), sizes=(256, 512), threads=64, reps=3,
    )
    defaults.update(kw)
    return Experiment(**defaults)


def serial_baseline(exp):
    return SweepEngine(cache=None, parallel=False).run(exp)


def arm_plan(monkeypatch, tmp_path, *events):
    """Write a plan file and arm it for this test (and its children)."""
    path = ChaosPlan(tuple(events)).write(str(tmp_path / "plan.json"))
    monkeypatch.setenv(CHAOS_PLAN_ENV, path)
    return path


def process_engine(cache=None, workers=2):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    return SweepEngine(cache=cache, parallel=True, max_workers=workers,
                       mode="process")


# --------------------------------------------------------------------------
# WatchdogPolicy: spec grammar and validation
# --------------------------------------------------------------------------

class TestWatchdogPolicy:
    def test_defaults(self):
        wd = WatchdogPolicy()
        assert wd.enabled and wd.cell_timeout_s is None
        assert wd.max_respawns == 3 and wd.max_redrives == 2

    def test_parse_on_off(self):
        assert WatchdogPolicy.parse("").enabled
        assert WatchdogPolicy.parse("on").enabled
        for off in ("off", "0", "false", "no", "OFF"):
            assert not WatchdogPolicy.parse(off).enabled

    def test_parse_bare_number_is_timeout(self):
        assert WatchdogPolicy.parse("30").cell_timeout_s == 30.0
        assert WatchdogPolicy.parse("1.5").cell_timeout_s == 1.5

    def test_parse_key_values(self):
        wd = WatchdogPolicy.parse("timeout=30,respawns=2,redrives=1")
        assert wd.cell_timeout_s == 30.0
        assert wd.max_respawns == 2 and wd.max_redrives == 1
        assert WatchdogPolicy.parse("timeout=off").cell_timeout_s is None

    @pytest.mark.parametrize("bad", [
        "timeout=banana", "respawns=1.5", "banana=1", "timeout",
        "timeout=1,timeout=2", "timeout=-1", "respawns=-1", "redrives=-2",
    ])
    def test_parse_rejects_junk(self, bad):
        with pytest.raises(ConfigError):
            WatchdogPolicy.parse(bad)

    def test_describe(self):
        assert WatchdogPolicy.parse("off").describe() == "off"
        text = WatchdogPolicy.parse("timeout=30,respawns=2").describe()
        assert "timeout=30s" in text and "respawns<=2" in text


# --------------------------------------------------------------------------
# ChaosPlan: codec, arming, deterministic once-only firing
# --------------------------------------------------------------------------

class TestChaosPlan:
    def test_round_trip(self):
        plan = ChaosPlan((
            ChaosEvent("worker-cell", "kill", match="julia", after=2),
            ChaosEvent("cache-put", "enospc", count=5),
        ))
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_validation(self):
        with pytest.raises(ConfigError):
            ChaosEvent("banana", "kill")
        with pytest.raises(ConfigError):
            ChaosEvent("worker-cell", "explode")
        with pytest.raises(ConfigError):
            ChaosEvent("worker-cell", "kill", after=-1)
        with pytest.raises(ConfigError):
            ChaosPlan.from_json("{not json")
        with pytest.raises(ConfigError):
            ChaosPlan.load("/nonexistent/plan.json")
        assert "kill" in CHAOS_ACTIONS and "worker-cell" in CHAOS_POINTS

    def test_unarmed_strike_is_noop(self, monkeypatch):
        monkeypatch.delenv(CHAOS_PLAN_ENV, raising=False)
        assert not chaos_armed()
        chaos_strike("worker-cell", "julia@256x256x256")  # must not raise

    def test_window_fires_exactly_once(self, monkeypatch, tmp_path):
        path = arm_plan(monkeypatch, tmp_path,
                        ChaosEvent("cache-put", "enospc", after=1, count=1))
        assert chaos_armed()
        chaos_strike("cache-put", "fp0")            # ordinal 0: pass
        with pytest.raises(OSError) as exc:
            chaos_strike("cache-put", "fp1")        # ordinal 1: fire
        assert exc.value.errno == errno.ENOSPC
        chaos_strike("cache-put", "fp2")            # ordinal 2: pass again
        chaos_strike("journal-append", "cell-done")  # other point: no-op
        fired = sorted(os.listdir(path + ".fired"))
        assert fired == ["e0.hit0", "e0.hit1", "e0.hit2"]

    def test_match_filters_labels(self, monkeypatch, tmp_path):
        arm_plan(monkeypatch, tmp_path,
                 ChaosEvent("worker-cell", "enospc", match="julia",
                            count=100))
        chaos_strike("worker-cell", "numba@256x256x256")  # no match: pass
        with pytest.raises(OSError):
            chaos_strike("worker-cell", "julia@256x256x256")


# --------------------------------------------------------------------------
# Process-engine watchdog: crash + hang recovery, budget exhaustion
# --------------------------------------------------------------------------

class TestWorkerCrashRecovery:
    def test_sigkill_mid_cell_recovers_byte_identically(
            self, monkeypatch, tmp_path):
        exp = small_exp()
        serial = serial_baseline(exp)
        arm_plan(monkeypatch, tmp_path,
                 ChaosEvent("worker-cell", "kill", after=1, count=1))
        engine = process_engine()
        survived = engine.run(exp)
        assert survived.measurements == serial.measurements
        assert render_result_set(survived) == render_result_set(serial)
        report = engine.last_report
        assert report.respawns >= 1 and report.redrives >= 1
        assert "respawn" in report.render()

    def test_hung_worker_times_out_and_recovers(self, monkeypatch, tmp_path):
        exp = small_exp()
        serial = serial_baseline(exp)
        arm_plan(monkeypatch, tmp_path,
                 ChaosEvent("worker-cell", "hang", count=1))
        engine = process_engine()
        opts = RunOptions(watchdog=WatchdogPolicy(cell_timeout_s=1.5))
        survived = engine.run(exp, options=opts)
        assert survived.measurements == serial.measurements
        assert engine.last_report.respawns >= 1

    def test_redrive_budget_exhaustion_fails_cells_degraded(
            self, monkeypatch, tmp_path):
        # Every execution of every cell is killed: once the per-cell
        # redrive budget is spent the cells must fail through the normal
        # degraded path (e = 0), not crash the run or loop forever.
        # (A single-cell sweep would fall back to the serial drive, so
        # two cells keep the pool — and the strike point — in play.)
        exp = small_exp(models=("julia",), sizes=(256, 512))
        arm_plan(monkeypatch, tmp_path,
                 ChaosEvent("worker-cell", "kill", count=1_000_000))
        engine = process_engine()
        opts = RunOptions(watchdog=WatchdogPolicy(max_redrives=1,
                                                  max_respawns=5))
        results = engine.run(exp, options=opts)
        assert len(results.measurements) == 2
        for m in results.measurements:
            assert m.failed and not m.supported
            assert "redrive budget" in m.note
        report = engine.last_report
        assert report.respawns == 2 and report.redrives == 2
        assert "DEGRADED" in render_result_set(results)

    def test_fail_fast_surfaces_worker_lost(self, monkeypatch, tmp_path):
        exp = small_exp(models=("julia",), sizes=(256, 512))
        arm_plan(monkeypatch, tmp_path,
                 ChaosEvent("worker-cell", "kill", count=1_000_000))
        engine = process_engine()
        opts = RunOptions(watchdog=WatchdogPolicy(max_redrives=0),
                          fail_fast=True)
        with pytest.raises(WorkerLost):
            engine.run(exp, options=opts)


# --------------------------------------------------------------------------
# ResultCache: disk pressure degrades to read-only, never crashes
# --------------------------------------------------------------------------

class TestCacheDiskPressure:
    def test_enospc_flips_read_only_and_results_unchanged(
            self, monkeypatch, tmp_path):
        exp = small_exp()
        baseline = render_result_set(serial_baseline(exp))
        cache = ResultCache(str(tmp_path / "cache"))
        arm_plan(monkeypatch, tmp_path,
                 ChaosEvent("cache-put", "enospc", count=1_000_000))
        results = SweepEngine(cache=cache, parallel=False).run(exp)
        assert render_result_set(results) == baseline
        assert cache.read_only
        snap = cache.pressure_snapshot()
        # first put: initial attempt + post-reclaim retry both ENOSPC
        assert snap["enospc"] >= 2
        assert snap["read_only"] is True
        assert "space" in snap["reason"].lower()
        # the remaining cells skipped their stores instead of retrying
        assert snap["skipped_puts"] >= 1
        assert cache.stats.snapshot()["stores"] == 0

    def test_read_only_is_per_process_not_persisted(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.read_only = True
        assert not ResultCache(str(tmp_path / "cache")).read_only


# --------------------------------------------------------------------------
# RunJournal: a full disk degrades the journal, never the run
# --------------------------------------------------------------------------

class TestJournalDegradation:
    def test_append_failure_degrades_and_keeps_valid_prefix(
            self, monkeypatch, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = RunJournal.create(path, "run-chaos")
        arm_plan(monkeypatch, tmp_path,
                 ChaosEvent("journal-append", "enospc", after=1, count=1))
        journal.append("cell-start", index=0)       # durable
        assert not journal.degraded
        journal.append("cell-done", index=0)        # hits ENOSPC: dropped
        assert journal.degraded
        assert journal.dropped_appends == 1
        assert "space" in journal.degrade_reason.lower()
        journal.append("cell-start", index=1)       # degraded: dropped too
        assert journal.dropped_appends == 2
        with open(path) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert len(lines) == 1 and lines[0]["type"] == "cell-start"


# --------------------------------------------------------------------------
# Orphaned lock sidecars: age-graced reaping in clear() and fsck
# --------------------------------------------------------------------------

class TestLockReaping:
    def _locks(self, cache):
        shard = os.path.join(cache.root, "ab")
        os.makedirs(shard, exist_ok=True)
        stale = os.path.join(shard, "abdead.json.lock")
        young = os.path.join(shard, "abcafe.json.lock")
        for p in (stale, young):
            with open(p, "w"):
                pass
        past = time.time() - (LOCK_GRACE_SECONDS + 60.0)
        os.utime(stale, (past, past))
        return stale, young

    def test_stale_lock_paths_respects_grace(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        stale, young = self._locks(cache)
        assert list(cache.stale_lock_paths()) == [stale]
        assert sorted(cache.stale_lock_paths(min_age_s=0)) == \
            sorted([stale, young])

    def test_clear_reaps_only_stale_locks(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        stale, young = self._locks(cache)
        cache.clear()
        assert not os.path.exists(stale)
        assert os.path.exists(young)

    def test_fsck_reaps_stale_locks(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        stale, young = self._locks(cache)
        report = fsck_store(cache=cache,
                            registry=RunRegistry(str(tmp_path / "runs")))
        assert report.locks_removed == 1
        assert not os.path.exists(stale)
        assert os.path.exists(young)


# --------------------------------------------------------------------------
# Registry heartbeats: liveness age for `repro status`
# --------------------------------------------------------------------------

class TestHeartbeatAge:
    def test_live_owner_has_age(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        registry.create("hb-run")
        assert registry.heartbeat_age("hb-run") is None
        registry.mark_active("hb-run")
        age = registry.heartbeat_age("hb-run")
        assert age is not None and 0.0 <= age < 60.0
        registry.release_active("hb-run")
        assert registry.heartbeat_age("hb-run") is None

    def test_dead_owner_sidecar_pruned(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        registry.create("hb-dead")
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        registry.mark_active("hb-dead", pid=proc.pid)
        assert os.path.exists(registry.active_path("hb-dead"))
        assert registry.heartbeat_age("hb-dead") is None
        assert not os.path.exists(registry.active_path("hb-dead"))


# --------------------------------------------------------------------------
# Service supervision: crashed campaigns restart, then quarantine
# --------------------------------------------------------------------------

class TestServiceSupervision:
    def _service(self, tmp_path):
        return CampaignService(
            registry=RunRegistry(str(tmp_path / "runs")),
            cache=ResultCache(str(tmp_path / "cache")))

    def test_crashing_campaign_restarts_then_quarantines(
            self, tmp_path, monkeypatch):
        from repro.service.campaign import CampaignExecution
        svc = self._service(tmp_path)
        cid = svc.submit(CampaignSpec(experiment=small_exp(),
                                      tenant="alice"))

        def boom(self):
            raise RuntimeError("chaos: injected campaign crash")

        monkeypatch.setattr(CampaignExecution, "step", boom)
        for expected_restarts in range(1, MAX_CAMPAIGN_RESTARTS + 1):
            svc.step()
            campaign = svc.campaign(cid)
            assert campaign.restarts == expected_restarts
            assert campaign.state == "queued"
        svc.step()  # budget spent: quarantine, not a fourth attempt
        campaign = svc.campaign(cid)
        assert campaign.state == "quarantined"
        assert svc.restarts_total == MAX_CAMPAIGN_RESTARTS
        assert svc.quarantined_total == 1
        assert svc.health_state() == "degraded"
        assert svc.idle

        payload = svc.status_payload()
        assert payload["state"] == "degraded"
        assert payload["supervision"] == {
            "restarts": MAX_CAMPAIGN_RESTARTS, "quarantined": 1}

        # a fresh daemon life must not resurrect the quarantined campaign
        svc2 = self._service(tmp_path)
        assert svc2.recover() == []

    def test_healthy_service_reports_ready(self, tmp_path):
        svc = self._service(tmp_path)
        assert svc.health_state() == "ready"
        payload = svc.status_payload()
        assert payload["state"] == "ready"
        assert payload["uptime_s"] >= 0.0
        assert payload["supervision"] == {"restarts": 0, "quarantined": 0}

    def test_read_only_cache_degrades_health(self, tmp_path):
        svc = self._service(tmp_path)
        svc.cache.read_only = True
        assert svc.health_state() == "degraded"

    def test_ping_payload_states(self, tmp_path):
        svc = self._service(tmp_path)
        daemon = CampaignDaemon(service=svc,
                                socket_path=str(tmp_path / "d.sock"))
        try:
            ping = daemon.ping_payload()
            assert ping["ok"] is True
            assert ping["pid"] == os.getpid()
            assert ping["state"] == "ready"
            assert ping["uptime_s"] >= 0.0
            svc.cache.read_only = True
            assert daemon.ping_payload()["state"] == "degraded"
            daemon.request_shutdown()
            assert daemon.ping_payload()["state"] == "draining"
        finally:
            daemon.server.server_close()


# --------------------------------------------------------------------------
# The harness itself: scenario registry and the robustness bench
# --------------------------------------------------------------------------

class TestChaosSuite:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            run_chaos_suite(scenarios=["banana"])

    def test_cheap_scenarios_write_robustness_bench(self, tmp_path):
        out = str(tmp_path / "BENCH_robustness.json")
        results = run_chaos_suite(out=out,
                                  scenarios=["journal-tear", "disk-full"],
                                  workdir=str(tmp_path / "wd"))
        assert [r.name for r in results] == ["journal-tear", "disk-full"]
        assert all(r.identical for r in results)
        assert all(r.mttr_s >= 0.0 for r in results)
        with open(out) as fh:
            payload = json.load(fh)
        assert payload["benchmark"] == "robustness"
        assert payload["all_identical"] is True
        assert set(payload["scenarios"]) == {"journal-tear", "disk-full"}
        for doc in payload["scenarios"].values():
            assert {"identical", "mttr_s", "metrics"} <= set(doc)
