"""Tests for the BabelStream-style memory-bandwidth suite (E16)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import Precision
from repro.errors import KernelValidationError, UnsupportedConfigurationError
from repro.machine import A100, AMPERE_ALTRA, EPYC_7A53, MI250X
from repro.stream import (
    SCALAR,
    StreamKernel,
    make_arrays,
    measure_host_stream,
    run_kernel,
    simulate_stream,
    stream_table,
    validate_stream,
)


class TestSpec:
    def test_traits_table(self):
        assert StreamKernel.COPY.traits.words_moved == 2
        assert StreamKernel.TRIAD.traits.flops == 2
        assert StreamKernel.DOT.traits.has_reduction

    def test_bytes_moved(self):
        assert StreamKernel.ADD.bytes_moved(1000, Precision.FP64) == 24000
        assert StreamKernel.COPY.bytes_moved(1000, Precision.FP32) == 8000

    def test_flop_count(self):
        assert StreamKernel.COPY.flop_count(100) == 0
        assert StreamKernel.DOT.flop_count(100) == 200


class TestRealKernels:
    def test_validate_sequence_fp64(self):
        validate_stream(4096, Precision.FP64)

    def test_validate_sequence_fp32(self):
        validate_stream(4096, Precision.FP32)

    def test_copy_semantics(self):
        arrays = make_arrays(128)
        run_kernel(StreamKernel.COPY, arrays)
        np.testing.assert_array_equal(arrays.c, arrays.a)

    def test_triad_semantics(self):
        arrays = make_arrays(64)
        run_kernel(StreamKernel.TRIAD, arrays)
        np.testing.assert_allclose(
            arrays.a, arrays.b + arrays.a.dtype.type(SCALAR) * arrays.c)

    def test_dot_returns_value(self):
        arrays = make_arrays(64)
        dot = run_kernel(StreamKernel.DOT, arrays)
        assert dot == pytest.approx(64 * 0.1 * 0.2)

    def test_reset(self):
        arrays = make_arrays(16)
        run_kernel(StreamKernel.TRIAD, arrays)
        arrays.reset()
        assert float(arrays.a[0]) == pytest.approx(0.1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_arrays(0)

    def test_host_measurement(self):
        host = measure_host_stream(n=1 << 16, reps=2)
        assert set(host) == set(StreamKernel)
        assert all(bw > 0 for bw in host.values())


class TestSimulatedStream:
    N = 1 << 25

    def test_cpu_bandwidth_below_peak(self):
        for cpu in (EPYC_7A53, AMPERE_ALTRA):
            t = simulate_stream("c-openmp", cpu, StreamKernel.TRIAD, self.N)
            assert 0 < t.bandwidth_gbs < cpu.total_bandwidth_gbs

    def test_gpu_bandwidth_below_peak(self):
        for gpu in (A100, MI250X):
            t = simulate_stream("hip" if "MI" in gpu.name else "cuda",
                                gpu, StreamKernel.TRIAD, self.N)
            assert 0.7 * gpu.hbm_bandwidth_gbs < t.bandwidth_gbs \
                < gpu.hbm_bandwidth_gbs

    def test_memory_bound_portability_is_easy(self):
        """The headline STREAM finding: on GPUs at STREAM sizes, every
        supported model lands within ~5% of the vendor — the opposite of
        the GEMM result."""
        vendor = simulate_stream("cuda", A100, StreamKernel.TRIAD, self.N)
        julia = simulate_stream("julia", A100, StreamKernel.TRIAD, self.N)
        numba = simulate_stream("numba", A100, StreamKernel.TRIAD, self.N)
        assert julia.bandwidth_gbs == pytest.approx(vendor.bandwidth_gbs,
                                                    rel=0.05)
        assert numba.bandwidth_gbs == pytest.approx(vendor.bandwidth_gbs,
                                                    rel=0.06)

    def test_numba_launch_overhead_at_small_sizes(self):
        small = 1 << 16
        vendor = simulate_stream("cuda", A100, StreamKernel.COPY, small)
        numba = simulate_stream("numba", A100, StreamKernel.COPY, small)
        assert numba.bandwidth_gbs < 0.5 * vendor.bandwidth_gbs

    def test_write_allocate_penalty_cpu_only(self):
        """Julia pays the write-allocate tax on store kernels on the CPU,
        but not on DOT (no store) and not on the GPU."""
        copy = simulate_stream("julia", EPYC_7A53, StreamKernel.COPY, self.N)
        dot = simulate_stream("julia", EPYC_7A53, StreamKernel.DOT, self.N)
        vendor_copy = simulate_stream("c-openmp", EPYC_7A53,
                                      StreamKernel.COPY, self.N)
        vendor_dot = simulate_stream("c-openmp", EPYC_7A53,
                                     StreamKernel.DOT, self.N)
        assert copy.bandwidth_gbs < 0.9 * vendor_copy.bandwidth_gbs
        assert dot.bandwidth_gbs == pytest.approx(vendor_dot.bandwidth_gbs,
                                                  rel=0.02)

    def test_unsupported_combination(self):
        with pytest.raises(UnsupportedConfigurationError):
            simulate_stream("numba", MI250X, StreamKernel.COPY, self.N)

    @given(st.sampled_from(list(StreamKernel)),
           st.sampled_from([Precision.FP64, Precision.FP32]))
    @settings(max_examples=15, deadline=None)
    def test_reported_bytes_are_nominal(self, kernel, precision):
        """Bandwidth is reported on STREAM's nominal byte count, never the
        inflated effective traffic (BabelStream convention)."""
        t = simulate_stream("julia", EPYC_7A53, kernel, 1 << 20, precision)
        assert t.bytes_moved == kernel.bytes_moved(1 << 20, precision)


class TestStreamTable:
    def test_grid_with_unsupported(self):
        table = stream_table(MI250X, ("hip", "julia", "numba"), n=1 << 22)
        assert table.bandwidth("Python/Numba", StreamKernel.COPY) is None
        assert table.bandwidth("HIP", StreamKernel.COPY) > 0

    def test_render(self):
        table = stream_table(EPYC_7A53, ("c-openmp", "julia"), n=1 << 22)
        out = table.render()
        assert "triad" in out and "GB/s" in out
