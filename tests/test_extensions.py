"""Tests for the extension subsystems added beyond the paper's core grid:
PyOMP, KernelAbstractions.jl, scaling studies, roofline view, export,
pretty-printing, and end-to-end transfer accounting."""

import json

import pytest

from repro.core.types import DeviceKind, MatrixShape, Precision
from repro.errors import ExperimentError
from repro.harness import (
    Experiment,
    default_thread_counts,
    result_set_to_csv,
    result_set_to_dict,
    result_set_to_json,
    roofline_view,
    run_experiment,
    table3_to_dict,
    thread_scaling,
)
from repro.ir.pretty import render_kernel
from repro.machine import A100, AMPERE_ALTRA, EPYC_7A53, MI250X
from repro.models import (
    extension_models,
    model_by_name,
    all_models,
)
from repro.sched.affinity import PinPolicy


class TestExtensionRegistry:
    def test_extensions_listed(self):
        names = {m.name for m in extension_models()}
        assert names == {"pyomp", "kernelabstractions"}

    def test_extensions_resolvable_by_name(self):
        assert model_by_name("pyomp").display == "Python/PyOMP"
        assert model_by_name("kernelabstractions").language == "Julia"

    def test_core_grid_unchanged(self):
        """The paper's figures must not silently grow extension models."""
        assert {m.name for m in all_models()} == {
            "c-openmp", "cuda", "hip", "kokkos", "julia", "numba"}
        assert len(all_models(include_extensions=True)) == 8


class TestPyOMP:
    def test_pins_threads_unlike_numba(self):
        pyomp = model_by_name("pyomp").lower_cpu(EPYC_7A53, Precision.FP64)
        numba = model_by_name("numba").lower_cpu(EPYC_7A53, Precision.FP64)
        assert pyomp.pin is PinPolicy.COMPACT
        assert numba.pin is PinPolicy.NONE

    def test_same_codegen_residual_as_numba(self):
        pyomp = model_by_name("pyomp").lower_cpu(EPYC_7A53, Precision.FP64)
        numba = model_by_name("numba").lower_cpu(EPYC_7A53, Precision.FP64)
        assert pyomp.profile.issue_multiplier == numba.profile.issue_multiplier
        assert pyomp.kernel.loop_order == numba.kernel.loop_order

    def test_no_gpu(self):
        s = model_by_name("pyomp").supports(A100, Precision.FP64)
        assert not s.supported

    def test_closes_numa_share_of_numba_gap(self):
        """On the 4-NUMA EPYC, PyOMP (pinned) beats Numba (unpinned) by
        about the migration tax; on the 1-NUMA Altra they tie."""
        exp = Experiment(
            exp_id="pyomp-vs-numba", title="t", node_name="Crusher",
            device=DeviceKind.CPU, precision=Precision.FP64,
            models=("numba", "pyomp"), sizes=(2048,), threads=64, reps=5)
        rs = run_experiment(exp)
        ratio = rs.cell("pyomp", 2048).gflops / rs.cell("numba", 2048).gflops
        assert ratio == pytest.approx(1.30, abs=0.06)


class TestKernelAbstractions:
    def test_gpu_both_vendors(self):
        ka = model_by_name("kernelabstractions")
        assert ka.supports(A100, Precision.FP64).supported
        assert ka.supports(MI250X, Precision.FP32).supported
        assert not ka.supports(EPYC_7A53, Precision.FP64).supported

    def test_small_overhead_over_native_julia(self):
        from repro.gpu.warp_sim import simulate_gpu_kernel
        sh = MatrixShape.square(8192)
        for gpu in (A100, MI250X):
            ka = model_by_name("kernelabstractions").lower_gpu(gpu, Precision.FP64)
            native = model_by_name("julia").lower_gpu(gpu, Precision.FP64)
            t_ka = simulate_gpu_kernel(ka.kernel, ka.launch, gpu, sh, ka.profile)
            t_nat = simulate_gpu_kernel(native.kernel, native.launch, gpu, sh,
                                        native.profile)
            penalty = t_ka.total_seconds / t_nat.total_seconds
            assert 1.0 <= penalty < 1.12, gpu.name

    def test_same_launch_convention_as_julia(self):
        ka = model_by_name("kernelabstractions").lower_gpu(A100, Precision.FP64)
        assert ka.launch.x_axis == "i"
        assert ka.kernel.inner.unroll == 2  # same GPUCompiler pipeline


class TestThreadScaling:
    def test_default_counts(self):
        assert default_thread_counts(64) == (1, 2, 4, 8, 16, 32, 64)
        assert default_thread_counts(80) == (1, 2, 4, 8, 16, 32, 64, 80)

    def test_pinned_model_scales_nearly_ideally(self):
        r = thread_scaling("c-openmp", EPYC_7A53, MatrixShape.square(2048),
                           thread_counts=(1, 16, 64))
        assert r.point(64).parallel_efficiency > 0.95

    def test_unpinned_numba_scales_worse_on_numa(self):
        numba = thread_scaling("numba", EPYC_7A53, MatrixShape.square(2048),
                               thread_counts=(1, 64))
        ref = thread_scaling("c-openmp", EPYC_7A53, MatrixShape.square(2048),
                             thread_counts=(1, 64))
        assert numba.point(64).parallel_efficiency < \
            ref.point(64).parallel_efficiency - 0.1

    def test_numba_scales_fine_on_single_numa(self):
        r = thread_scaling("numba", AMPERE_ALTRA, MatrixShape.square(2048),
                           thread_counts=(1, 80))
        assert r.point(80).parallel_efficiency > 0.9

    def test_speedup_monotone(self):
        r = thread_scaling("julia", EPYC_7A53, MatrixShape.square(2048))
        speedups = [p.speedup for p in r.points]
        assert speedups == sorted(speedups)

    def test_unsupported_model_raises(self):
        with pytest.raises(ExperimentError):
            thread_scaling("cuda", EPYC_7A53, MatrixShape.square(512))

    def test_bad_thread_counts(self):
        with pytest.raises(ExperimentError):
            thread_scaling("julia", EPYC_7A53, MatrixShape.square(512),
                           thread_counts=(0,))

    def test_render(self):
        r = thread_scaling("julia", EPYC_7A53, MatrixShape.square(1024),
                           thread_counts=(1, 64))
        out = r.render()
        assert "speedup" in out and "Julia" in out


class TestWeakScaling:
    def test_flat_for_pinned_model(self):
        from repro.harness import weak_scaling
        r = weak_scaling("c-openmp", EPYC_7A53, MatrixShape.square(1024),
                         thread_counts=(1, 8, 64))
        # constant work per thread: runtime stays flat (efficiency ~ 1)
        assert r.points[-1].parallel_efficiency == pytest.approx(1.0,
                                                                 abs=0.1)

    def test_aggregate_gflops_scale_with_threads(self):
        from repro.harness import weak_scaling
        r = weak_scaling("julia", EPYC_7A53, MatrixShape.square(1024),
                         thread_counts=(1, 64))
        assert r.points[-1].speedup == pytest.approx(64, rel=0.15)

    def test_problem_grows_cuberoot(self):
        from repro.harness import weak_scaling
        r = weak_scaling("c-openmp", EPYC_7A53, MatrixShape.square(1000),
                         thread_counts=(1, 8))
        # n(8) = 1000 * 8^(1/3) = 2000: flops ratio 8 at equal gflops
        assert r.points[1].seconds == pytest.approx(r.points[0].seconds,
                                                    rel=0.1)

    def test_unsupported_raises(self):
        from repro.harness import weak_scaling
        with pytest.raises(ExperimentError):
            weak_scaling("hip", EPYC_7A53, MatrixShape.square(512))


class TestRooflineView:
    def test_cpu_view(self):
        v = roofline_view(EPYC_7A53, MatrixShape.square(4096),
                          models=("c-openmp", "numba"))
        assert len(v.points) == 2
        assert v.ridge_intensity == pytest.approx(
            EPYC_7A53.peak_gflops(Precision.FP64)
            / EPYC_7A53.total_bandwidth_gbs)
        for p in v.points:
            assert 0 < p.ceiling_fraction <= 1.0

    def test_gpu_view_skips_unsupported(self):
        v = roofline_view(MI250X, MatrixShape.square(4096),
                          models=("hip", "numba"))
        assert [p.label for p in v.points] == ["HIP"]

    def test_gpu_naive_kernel_compute_regime(self):
        """The naive GEMM sits right of the ridge but far below peak —
        the quantitative form of 'issue-bound, not DRAM-bound'."""
        v = roofline_view(A100, MatrixShape.square(8192), models=("cuda",))
        (p,) = v.points
        assert p.bound_kind == "compute"
        assert p.arithmetic_intensity > v.ridge_intensity
        assert p.ceiling_fraction < 0.2

    def test_render(self):
        v = roofline_view(A100, MatrixShape.square(4096), models=("cuda",))
        out = v.render()
        assert "ridge" in out and "CUDA" in out


class TestExport:
    def _rs(self):
        exp = Experiment(
            exp_id="exp-export", title="t", node_name="Wombat",
            device=DeviceKind.GPU, precision=Precision.FP32,
            models=("cuda", "numba"), sizes=(512, 1024), reps=5)
        return run_experiment(exp)

    def test_json_roundtrip(self):
        rs = self._rs()
        data = json.loads(result_set_to_json(rs))
        from repro.harness.export import SCHEMA_VERSION
        assert data["schema"] == SCHEMA_VERSION
        assert data["experiment"]["node"] == "Wombat"
        assert len(data["measurements"]) == 4
        m0 = data["measurements"][0]
        assert len(m0["times_s"]) == rs.experiment.reps + 1

    def test_dict_marks_unsupported(self):
        exp = Experiment(
            exp_id="x", title="t", node_name="Crusher",
            device=DeviceKind.GPU, precision=Precision.FP64,
            models=("numba",), sizes=(512,))
        data = result_set_to_dict(run_experiment(exp))
        (m,) = data["measurements"]
        assert m["supported"] is False and m["gflops"] is None

    def test_csv_shape(self):
        out = result_set_to_csv(self._rs())
        lines = out.strip().splitlines()
        assert len(lines) == 5  # header + 4 cells
        assert lines[0].startswith("experiment,model,size")

    def test_table3_dict(self):
        from repro.harness import table3
        data = table3_to_dict(table3((1024, 4096)))
        assert len(data["rows"]) == 6  # 3 models x 2 precisions
        assert all("phi" in r for r in data["rows"])


class TestTransfersMode:
    def test_transfers_slow_small_sizes(self):
        base = Experiment(
            exp_id="no-tx", title="t", node_name="Wombat",
            device=DeviceKind.GPU, precision=Precision.FP64,
            models=("cuda",), sizes=(512,), reps=5)
        e2e = Experiment(
            exp_id="tx", title="t", node_name="Wombat",
            device=DeviceKind.GPU, precision=Precision.FP64,
            models=("cuda",), sizes=(512,), reps=5, include_transfers=True)
        t_base = run_experiment(base).cell("cuda", 512).seconds
        t_e2e = run_experiment(e2e).cell("cuda", 512).seconds
        assert t_e2e > 1.5 * t_base

    def test_transfer_bound_label_at_tiny_sizes(self):
        """At tiny sizes the fixed copy latency exceeds the kernel and the
        measurement is labelled transfer-bound."""
        exp = Experiment(
            exp_id="tx-tiny", title="t", node_name="Wombat",
            device=DeviceKind.GPU, precision=Precision.FP64,
            models=("cuda",), sizes=(128,), reps=3, include_transfers=True)
        assert run_experiment(exp).cell("cuda", 128).bound == "transfer"

    def test_transfers_negligible_at_large_sizes(self):
        """O(n^2) transfers vs O(n^3) compute: the end-to-end mode matters
        less as the problem grows."""
        def overhead(n):
            base = Experiment(
                exp_id=f"b{n}", title="t", node_name="Wombat",
                device=DeviceKind.GPU, precision=Precision.FP64,
                models=("cuda",), sizes=(n,), reps=3)
            e2e = Experiment(
                exp_id=f"e{n}", title="t", node_name="Wombat",
                device=DeviceKind.GPU, precision=Precision.FP64,
                models=("cuda",), sizes=(n,), reps=3, include_transfers=True)
            tb = run_experiment(base).cell("cuda", n).seconds
            te = run_experiment(e2e).cell("cuda", n).seconds
            return te / tb
        assert overhead(8192) < overhead(512)


class TestPrettyPrinter:
    def test_cpu_kernel_shape(self):
        low = model_by_name("c-openmp").lower_cpu(EPYC_7A53, Precision.FP64)
        out = render_kernel(low.kernel)
        assert "parallel-threads" in out
        assert "hoisted temp" in out
        assert "vectorize x4" in out and "unroll x4" in out

    def test_gpu_kernel_shape(self):
        low = model_by_name("cuda").lower_gpu(A100, Precision.FP64)
        out = render_kernel(low.kernel)
        assert "# grid" in out
        assert "guard on C" in out
        assert "stored once, after the k loop" in out
        assert "acc = 0" in out

    def test_julia_vs_cuda_unroll_visible(self):
        """The Sec. IV-B PTX observation is visible in the listing."""
        cuda = render_kernel(model_by_name("cuda").lower_gpu(
            A100, Precision.FP64).kernel)
        julia = render_kernel(model_by_name("julia").lower_gpu(
            A100, Precision.FP64).kernel)
        assert "unroll x4" in cuda
        assert "unroll x2" in julia

    def test_fastmath_flag_shown(self):
        low = model_by_name("numba").lower_cpu(EPYC_7A53, Precision.FP64)
        assert "fastmath" in render_kernel(low.kernel)
