"""Tests for the machine models: caches, CPUs, GPUs, nodes, catalog."""

import pytest
from hypothesis import given, strategies as st

from repro.core.types import Precision
from repro.errors import MachineModelError
from repro.machine import (
    A100,
    AMPERE_ALTRA,
    CRUSHER,
    CacheHierarchy,
    CacheLevel,
    CPUSpec,
    EPYC_7A53,
    GPUSpec,
    MI250X,
    NUMADomain,
    WOMBAT,
    cpu_by_name,
    gpu_by_name,
    node_by_name,
    uniform_numa,
)


class TestCacheLevel:
    def test_basic(self):
        l1 = CacheLevel("L1", 32 * 1024, 64, shared_by=1)
        assert l1.effective_size_per_core() == 32 * 1024

    def test_shared_split(self):
        l3 = CacheLevel("L3", 32 << 20, 64, shared_by=8)
        assert l3.effective_size_per_core() == (32 << 20) / 8

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(MachineModelError):
            CacheLevel("L1", 1024, line_bytes=48)

    def test_rejects_zero_size(self):
        with pytest.raises(MachineModelError):
            CacheLevel("L1", 0)


class TestCacheHierarchy:
    def test_ordering_enforced(self):
        with pytest.raises(MachineModelError):
            CacheHierarchy.of(CacheLevel("L1", 2048), CacheLevel("L2", 1024))

    def test_innermost_fitting(self):
        h = CacheHierarchy.of(CacheLevel("L1", 1024), CacheLevel("L2", 64 * 1024))
        assert h.innermost_fitting(512).name == "L1"
        assert h.innermost_fitting(32 * 1024).name == "L2"
        assert h.innermost_fitting(1 << 30) is None

    def test_innermost_fitting_with_sharers(self):
        h = CacheHierarchy.of(CacheLevel("L3", 1024, shared_by=8))
        # one active core gets the whole level
        assert h.innermost_fitting(1024, active_sharers=1) is not None
        # eight sharers each get 128 bytes
        assert h.innermost_fitting(1024, active_sharers=8) is None

    def test_level_lookup(self):
        assert EPYC_7A53.caches.level("l3").name == "L3"
        with pytest.raises(MachineModelError):
            EPYC_7A53.caches.level("L4")


class TestCPUSpec:
    def test_numa_partition_enforced(self):
        with pytest.raises(MachineModelError):
            CPUSpec(
                name="bad", cores=4, clock_ghz=1.0, simd_bits=128,
                fma_units=1, caches=CacheHierarchy(),
                numa=(NUMADomain(0, (0, 1), 10.0),),  # cores 2,3 missing
            )

    def test_simd_lanes(self):
        assert EPYC_7A53.simd_lanes(Precision.FP64) == 4   # 256-bit AVX2
        assert EPYC_7A53.simd_lanes(Precision.FP32) == 8
        assert AMPERE_ALTRA.simd_lanes(Precision.FP64) == 2  # 128-bit NEON

    def test_fp16_lanes_native_vs_not(self):
        # Altra executes FP16 natively: 8 lanes in 128 bits.
        assert AMPERE_ALTRA.simd_lanes(Precision.FP16) == 8
        # EPYC converts to FP32: no lane gain over FP32.
        assert EPYC_7A53.simd_lanes(Precision.FP16) == EPYC_7A53.simd_lanes(Precision.FP32)

    def test_peak_gflops_scales_with_threads(self):
        full = EPYC_7A53.peak_gflops(Precision.FP64)
        half = EPYC_7A53.peak_gflops(Precision.FP64, threads=32)
        assert full == pytest.approx(2 * half)

    def test_domain_of_core(self):
        assert EPYC_7A53.domain_of_core(0).domain_id == 0
        assert EPYC_7A53.domain_of_core(63).domain_id == 3
        with pytest.raises(MachineModelError):
            EPYC_7A53.domain_of_core(64)

    def test_uniform_numa_rejects_indivisible(self):
        with pytest.raises(MachineModelError):
            uniform_numa(10, 3, 100.0)

    @given(st.integers(1, 8))
    def test_uniform_numa_partitions(self, domains):
        cores = domains * 4
        doms = uniform_numa(cores, domains, 100.0)
        seen = sorted(c for d in doms for c in d.cores)
        assert seen == list(range(cores))


class TestGPUSpec:
    def test_a100_fp64_fp32_ratio(self):
        """A100 vector FP32 is exactly twice FP64 — the Sec. IV-B lever."""
        assert A100.peak_gflops(Precision.FP32) == pytest.approx(
            2 * A100.peak_gflops(Precision.FP64))

    def test_mi250x_full_rate_double(self):
        assert MI250X.peak_gflops(Precision.FP64) == pytest.approx(
            MI250X.peak_gflops(Precision.FP32))

    def test_peak_magnitudes(self):
        # datasheet: 9.7 TF (A100 fp64), 23.9 TF (MI250X GCD fp64)
        assert A100.peak_gflops(Precision.FP64) == pytest.approx(9746, rel=0.01)
        assert MI250X.peak_gflops(Precision.FP64) == pytest.approx(23936, rel=0.01)

    def test_machine_balance_positive(self):
        assert A100.machine_balance(Precision.FP64) > 1.0

    def test_fp16_falls_back_to_fp32_rate(self):
        assert A100.fma_rate(Precision.FP16) == A100.fma_rate(Precision.FP32)

    def test_rejects_bad_warp(self):
        with pytest.raises(MachineModelError):
            GPUSpec(name="x", compute_units=1, clock_ghz=1.0,
                    fma_per_cycle={Precision.FP64: 1, Precision.FP32: 2},
                    warp_size=48, max_threads_per_cu=1024, max_blocks_per_cu=8,
                    hbm_bandwidth_gbs=100, launch_overhead_us=1,
                    host_link_gbs=10)


class TestNodesAndCatalog:
    def test_crusher_composition(self):
        assert CRUSHER.cpu is EPYC_7A53
        assert CRUSHER.gpu() is MI250X
        assert CRUSHER.gpu_count == 8

    def test_wombat_composition(self):
        assert WOMBAT.cpu is AMPERE_ALTRA
        assert WOMBAT.gpu() is A100
        assert WOMBAT.gpu_count == 2

    def test_table1_core_counts(self):
        """Table I: 64-core 4-NUMA EPYC, 80-core 1-NUMA Altra."""
        assert EPYC_7A53.cores == 64 and EPYC_7A53.numa_domains == 4
        assert AMPERE_ALTRA.cores == 80 and AMPERE_ALTRA.numa_domains == 1

    def test_lookup_by_key_and_name(self):
        assert cpu_by_name("epyc-7a53") is EPYC_7A53
        assert cpu_by_name("AMD EPYC 7A53") is EPYC_7A53
        assert gpu_by_name("a100") is A100
        assert node_by_name("Wombat") is WOMBAT

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            cpu_by_name("m1-max")
        with pytest.raises(KeyError):
            gpu_by_name("h100")
        with pytest.raises(KeyError):
            node_by_name("frontier")
