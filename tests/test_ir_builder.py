"""Tests for IR construction: the canonical Fig. 2 / Fig. 3 kernels."""

import pytest

from repro.core.types import Layout, Precision
from repro.errors import IRVerificationError
from repro.ir import builder
from repro.ir.nodes import ParallelKind


class TestBuildGemm:
    def test_rejects_bad_order(self):
        with pytest.raises(IRVerificationError):
            builder.build_gemm("x", Precision.FP64, "ijq", Layout.ROW_MAJOR)

    def test_rejects_unknown_parallel_var(self):
        with pytest.raises(IRVerificationError):
            builder.build_gemm("x", Precision.FP64, "ijk", Layout.ROW_MAJOR,
                               parallel_vars=("z",))

    def test_rejects_two_worksharing_loops(self):
        with pytest.raises(IRVerificationError):
            builder.build_gemm("x", Precision.FP64, "ijk", Layout.ROW_MAJOR,
                               parallel_vars=("i", "j"))

    def test_grid_vars_must_be_outermost(self):
        with pytest.raises(IRVerificationError):
            builder.build_gemm("x", Precision.FP64, "kij", Layout.ROW_MAJOR,
                               parallel_vars=("i", "j"),
                               parallel_kind=ParallelKind.GRID)

    def test_scalar_accum_needs_k_innermost(self):
        with pytest.raises(IRVerificationError):
            builder.build_gemm("x", Precision.FP64, "ikj", Layout.ROW_MAJOR,
                               scalar_accum=True)

    def test_verify_passes_for_all_orders(self):
        for order in ("ijk", "ikj", "jik", "jki", "kij", "kji"):
            par = order[0] if order[0] != "k" else order[1]
            k = builder.build_gemm("x", Precision.FP64, order,
                                   Layout.ROW_MAJOR, parallel_vars=(par,))
            k.verify()
            assert k.loop_order == order


class TestCanonicalKernels:
    def test_c_openmp_shape(self):
        """Fig. 2a: order ikj, temp = A[i,k] hoisted above j, RMW of C."""
        k = builder.c_openmp_cpu(Precision.FP64)
        assert k.loop_order == "ikj"
        assert k.loops[0].parallel is ParallelKind.THREADS
        hoists = {ld.ref.array: ld.hoisted_above for ld in k.body.loads}
        assert hoists["A"] == "j"        # the temp variable
        assert hoists["B"] is None
        assert hoists["C"] is None       # read-modify-write
        assert not k.scalar_accum
        assert k.arrays[0].layout is Layout.ROW_MAJOR

    def test_julia_shape(self):
        """Fig. 2c: order jki, temp = B[k,j] hoisted above i, col-major."""
        k = builder.julia_threads_cpu(Precision.FP32)
        assert k.loop_order == "jki"
        assert k.loop("j").parallel is ParallelKind.THREADS
        hoists = {ld.ref.array: ld.hoisted_above for ld in k.body.loads}
        assert hoists["B"] == "i"
        assert k.arrays[0].layout is Layout.COL_MAJOR

    def test_numba_shape(self):
        """Fig. 2d: like C but with fastmath."""
        k = builder.numba_cpu(Precision.FP64)
        assert k.loop_order == "ikj"
        assert k.fastmath

    def test_kokkos_cpu_scalar_accum(self):
        k = builder.kokkos_cpu(Precision.FP64)
        assert k.loop_order == "ijk"
        assert k.scalar_accum
        # single store, sunk below the reduction loop
        (store,) = k.body.stores
        assert store.hoisted_above == "k"

    def test_gpu_kernel_shape(self):
        """Fig. 3: 2-D grid, guard above k, scalar accumulation."""
        k = builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR)
        assert [l.parallel for l in k.loops] == [
            ParallelKind.GRID, ParallelKind.GRID, ParallelKind.SEQUENTIAL]
        assert k.scalar_accum
        (guard,) = k.body.guards
        assert guard.hoisted_above == "k"
        # C is not loaded: the accumulator lives in a register
        assert {ld.ref.array for ld in k.body.loads} == {"A", "B"}

    def test_gpu_kernel_column_major(self):
        k = builder.gpu_thread_per_element("g", Precision.FP16, Layout.COL_MAJOR)
        assert all(d.layout is Layout.COL_MAJOR for d in k.arrays)
        assert k.precision is Precision.FP16


class TestBoundsChecks:
    def test_bounds_checked_kernel_has_guard_per_access(self):
        k = builder.build_gemm("x", Precision.FP64, "ikj", Layout.ROW_MAJOR,
                               bounds_checks=True)
        # 3 loads + 1 store
        assert len(k.body.guards) == 4
        assert k.bounds_checked

    def test_default_kernel_has_no_guards(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        assert k.body.guards == ()
