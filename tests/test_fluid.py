"""Tests for the fluid-flow bandwidth simulator."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.fluid import Channel, Flow, FluidSimulation


def sim(capacity=100.0):
    return FluidSimulation([Channel("mem", capacity)])


class TestSingleFlow:
    def test_uncapped_flow_runs_at_capacity(self):
        res = sim(100.0).run([Flow("a", 1000.0, math.inf, "mem")])
        assert res["a"].finish == pytest.approx(10.0)

    def test_demand_capped_flow(self):
        res = sim(100.0).run([Flow("a", 1000.0, 10.0, "mem")])
        assert res["a"].finish == pytest.approx(100.0)

    def test_zero_byte_flow_completes_immediately(self):
        res = sim().run([Flow("a", 0.0, 1.0, "mem", start=3.0)])
        assert res["a"].finish == 3.0

    def test_delayed_start(self):
        res = sim(100.0).run([Flow("a", 100.0, math.inf, "mem", start=5.0)])
        assert res["a"].start == 5.0
        assert res["a"].finish == pytest.approx(6.0)


class TestSharing:
    def test_two_equal_flows_halve(self):
        flows = [Flow("a", 100.0, math.inf, "mem"),
                 Flow("b", 100.0, math.inf, "mem")]
        res = sim(100.0).run(flows)
        assert res["a"].finish == pytest.approx(2.0)
        assert res["b"].finish == pytest.approx(2.0)

    def test_capped_flow_frees_bandwidth(self):
        """Max-min fairness: a demand-limited flow's leftover goes to the
        other flow."""
        flows = [Flow("slow", 100.0, 10.0, "mem"),
                 Flow("fast", 900.0, math.inf, "mem")]
        res = sim(100.0).run(flows)
        # slow streams at 10 for 10s; fast gets 90 throughout
        assert res["slow"].finish == pytest.approx(10.0)
        assert res["fast"].finish == pytest.approx(10.0)

    def test_completion_releases_share(self):
        flows = [Flow("a", 50.0, math.inf, "mem"),
                 Flow("b", 150.0, math.inf, "mem")]
        res = sim(100.0).run(flows)
        # both at 50 until t=1 (a done); b has 100 left at 100/s -> t=2
        assert res["a"].finish == pytest.approx(1.0)
        assert res["b"].finish == pytest.approx(2.0)

    def test_independent_channels_dont_contend(self):
        s = FluidSimulation([Channel("x", 100.0), Channel("y", 100.0)])
        res = s.run([Flow("a", 100.0, math.inf, "x"),
                     Flow("b", 100.0, math.inf, "y")])
        assert res["a"].finish == pytest.approx(1.0)
        assert res["b"].finish == pytest.approx(1.0)

    def test_late_arrival_shares_fairly(self):
        flows = [Flow("a", 200.0, math.inf, "mem"),
                 Flow("b", 100.0, math.inf, "mem", start=1.0)]
        res = sim(100.0).run(flows)
        # a alone until t=1 (100 left), then 50/50: a and b both need 2 more s
        assert res["a"].finish == pytest.approx(3.0)
        assert res["b"].finish == pytest.approx(3.0)


class TestValidation:
    def test_unknown_channel(self):
        with pytest.raises(KeyError):
            sim().run([Flow("a", 1.0, 1.0, "nope")])

    def test_duplicate_names(self):
        with pytest.raises(ValueError):
            sim().run([Flow("a", 1.0, 1.0, "mem"), Flow("a", 1.0, 1.0, "mem")])

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            Flow("a", -1.0, 1.0, "mem")

    def test_nonpositive_demand(self):
        with pytest.raises(ValueError):
            Flow("a", 1.0, 0.0, "mem")

    def test_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Channel("mem", 0.0)


class TestProperties:
    @given(st.lists(st.tuples(st.floats(1.0, 1e6), st.floats(1.0, 1e6)),
                    min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_makespan_bounds(self, pairs):
        """Makespan is bounded below by total_bytes/capacity and by the
        slowest flow alone, and above by serial execution."""
        cap = 100.0
        flows = [Flow(f"f{i}", b, d, "mem") for i, (b, d) in enumerate(pairs)]
        total = sum(f.bytes for f in flows)
        res = FluidSimulation([Channel("mem", cap)]).run(flows)
        makespan = max(r.finish for r in res.values())
        lower = max(total / cap, max(f.bytes / min(f.demand_rate, cap) for f in flows))
        upper = sum(f.bytes / min(f.demand_rate, cap) for f in flows)
        assert makespan >= lower * (1 - 1e-9)
        assert makespan <= upper * (1 + 1e-9)

    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_n_equal_flows_scale_linearly(self, n):
        flows = [Flow(f"f{i}", 100.0, math.inf, "mem") for i in range(n)]
        makespan = FluidSimulation([Channel("mem", 100.0)]).makespan(flows)
        assert makespan == pytest.approx(n * 1.0, rel=1e-6)

    def test_work_conservation(self):
        """With uncapped flows the channel never idles: makespan equals
        total bytes over capacity."""
        flows = [Flow(f"f{i}", 10.0 * (i + 1), math.inf, "mem")
                 for i in range(5)]
        makespan = sim(10.0).makespan(flows)
        assert makespan == pytest.approx(sum(10.0 * (i + 1) for i in range(5)) / 10.0)
