"""Tests for the sweep execution engine: concurrency, caching, determinism.

The engine's contract is bit-identity: parallel == serial, warm == cold,
traced == untraced.  Every test here pins some face of that contract.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.core.types import DeviceKind, Precision
from repro.errors import ConfigError, RetryExhaustedError
from repro.harness import (
    Experiment,
    run_experiment,
)
from repro.harness.export import result_set_to_json
from repro.harness.engine import (
    CONSTANTS_VERSION,
    ResultCache,
    RunOptions,
    SweepEngine,
    cell_fingerprint,
    default_engine,
    reset_default_engine,
)
from repro.sim.variability import VariabilityModel
from repro.trace.events import EventKind
from repro.trace.profiler import Profiler


def small_exp(**kw):
    defaults = dict(
        exp_id="eng-cpu", title="engine test", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=("c-openmp", "julia"), sizes=(256, 512), threads=64, reps=5,
    )
    defaults.update(kw)
    return Experiment(**defaults)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


def _race_put(root, fingerprint, payload, n):
    """Subprocess body: hammer one digest with repeated puts."""
    from repro.core.types import Precision
    from repro.harness.engine import ResultCache
    from repro.harness.export import measurement_from_dict

    m = measurement_from_dict(
        payload, default_precision=Precision.parse(
            payload.get("precision", "fp64")))
    store = ResultCache(root)
    for _ in range(n):
        store.put(fingerprint, m)


@pytest.fixture
def fresh_default_engine(tmp_path, monkeypatch):
    """A default engine pointed at a private tmp cache, reset afterwards."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-cache"))
    reset_default_engine()
    yield default_engine()
    reset_default_engine()


class TestDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        exp = small_exp()
        engine = SweepEngine(cache=None, parallel=True, max_workers=8)
        parallel = engine.run(exp)
        serial = run_experiment(exp, engine="serial",
                                options=RunOptions(cache=False))
        assert parallel.measurements == serial.measurements

    def test_cold_and_warm_cache_bit_identical(self, cache):
        exp = small_exp()
        engine = SweepEngine(cache=cache, parallel=True)
        cold = engine.run(exp)
        assert engine.last_report.executed_cells == len(cold.measurements)
        warm = engine.run(exp)
        assert engine.last_report.cached_cells == len(cold.measurements)
        assert cold.measurements == warm.measurements

    def test_warm_run_touches_no_simulator_code(self, cache, monkeypatch):
        exp = small_exp()
        engine = SweepEngine(cache=cache, parallel=False)
        engine.run(exp)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulator invoked on a warm run")

        import repro.harness.engine.worker as worker
        monkeypatch.setattr(worker, "run_measurement", boom)
        warm = engine.run(exp)
        assert all(m.supported for m in warm.measurements)

    def test_rendered_output_identical_cold_vs_warm(self, cache):
        from repro.harness.report import render_result_set
        exp = small_exp()
        engine = SweepEngine(cache=cache, parallel=True)
        cold = render_result_set(engine.run(exp))
        warm = render_result_set(engine.run(exp))
        assert cold == warm

    def test_traced_parallel_timeline_matches_serial(self):
        exp = small_exp(models=("numba", "julia"))
        serial_prof = Profiler()
        run_experiment(exp, engine="serial",
                       options=RunOptions(cache=False, profiler=serial_prof))
        engine_prof = Profiler()
        SweepEngine(cache=None, parallel=True, max_workers=4).run(
            exp, profiler=engine_prof)
        assert engine_prof.events == serial_prof.events

    def test_trace_bypasses_cache_reads(self, cache):
        exp = small_exp(models=("numba",), sizes=(256,))
        engine = SweepEngine(cache=cache, parallel=False)
        engine.run(exp)  # warm the cache
        prof = Profiler()
        engine.run(exp, profiler=prof)
        assert prof.count(EventKind.JIT_COMPILE) >= 1
        assert prof.count(EventKind.PARALLEL_REGION) == exp.reps + exp.warmup

    def test_sample_prefix_stable_when_reps_grow(self):
        vm = VariabilityModel(seed=2023, sigma=0.03)
        short = vm.samples(1.0, "stability", 4, warmup_extra_seconds=0.5)
        long = vm.samples(1.0, "stability", 9, warmup_extra_seconds=0.5)
        assert short == long[:4]

    def test_measurement_prefix_stable_when_reps_grow(self, cache):
        engine = SweepEngine(cache=cache, parallel=True)
        few = engine.run(small_exp(reps=5)).measurements[0]
        many = engine.run(small_exp(reps=10)).measurements[0]
        assert few.times_s == many.times_s[:len(few.times_s)]


class TestFingerprint:
    def test_distinct_cells_distinct_keys(self):
        exp = small_exp()
        shapes = exp.shapes()
        keys = {cell_fingerprint(exp, m, s)
                for m in exp.models for s in shapes}
        assert len(keys) == len(exp.models) * len(shapes)

    def test_every_methodology_knob_changes_the_key(self):
        exp = small_exp()
        shape = exp.shapes()[0]
        base = cell_fingerprint(exp, "julia", shape)
        variants = [
            small_exp(seed=1),
            small_exp(reps=7),
            small_exp(warmup=2),
            small_exp(threads=16),
            small_exp(precision=Precision.FP32),
            small_exp(exp_id="other"),
            small_exp(node_name="Wombat", threads=80),
        ]
        for variant in variants:
            assert cell_fingerprint(variant, "julia", shape) != base

    def test_shape_full_rank_in_key(self):
        from repro.core.types import MatrixShape
        exp = small_exp()
        wide = MatrixShape(512, 2048, 128)
        deep = MatrixShape(512, 128, 2048)
        assert cell_fingerprint(exp, "julia", wide) != \
            cell_fingerprint(exp, "julia", deep)


class TestCache:
    def test_counters(self, cache):
        exp = small_exp()
        engine = SweepEngine(cache=cache, parallel=False)
        engine.run(exp)
        snap = cache.stats.snapshot()
        assert snap["misses"] == 4 and snap["stores"] == 4
        engine.run(exp)
        assert cache.stats.snapshot()["hits"] == 4

    def test_disk_stats_and_clear(self, cache):
        engine = SweepEngine(cache=cache, parallel=False)
        engine.run(small_exp())
        disk = cache.disk_stats()
        assert disk["entries"] == 4 and disk["bytes"] > 0
        assert cache.clear() == 4
        assert cache.disk_stats() == {"entries": 0, "bytes": 0,
                                      "tmp_orphans": 0}

    def test_stale_constants_version_evicts(self, cache):
        exp = small_exp(models=("c-openmp",), sizes=(256,))
        engine = SweepEngine(cache=cache, parallel=False)
        engine.run(exp)
        (path,) = list(cache._entry_paths())
        with open(path) as fh:
            entry = json.load(fh)
        assert entry["constants"] == CONSTANTS_VERSION
        entry["constants"] = "0.stale"
        with open(path, "w") as fh:
            json.dump(entry, fh)
        fp = cell_fingerprint(exp, "c-openmp", exp.shapes()[0])
        assert cache.get(fp) is None
        assert cache.stats.snapshot()["evictions"] == 1
        assert not os.path.exists(path)

    def test_corrupt_entry_evicts(self, cache):
        engine = SweepEngine(cache=cache, parallel=False)
        exp = small_exp(models=("c-openmp",), sizes=(256,))
        engine.run(exp)
        (path,) = list(cache._entry_paths())
        with open(path, "w") as fh:
            fh.write("{not json")
        fp = cell_fingerprint(exp, "c-openmp", exp.shapes()[0])
        assert cache.get(fp) is None
        assert cache.stats.snapshot()["evictions"] == 1

    def test_unsupported_cells_round_trip(self, cache):
        exp = Experiment(
            exp_id="eng-gpu", title="t", node_name="Crusher",
            device=DeviceKind.GPU, precision=Precision.FP64,
            models=("numba",), sizes=(256,))
        engine = SweepEngine(cache=cache, parallel=False)
        cold = engine.run(exp)
        warm = engine.run(exp)
        assert not warm.measurements[0].supported
        assert cold.measurements == warm.measurements

    def test_cacheless_engine_runs(self):
        engine = SweepEngine(cache=None, parallel=True)
        rs = engine.run(small_exp())
        assert len(rs.measurements) == 4
        assert engine.last_report.cache_stats == {}


class TestConcurrentCacheWriters:
    """The process-pool engine makes the on-disk store multi-writer:
    racing puts must converge to one valid entry, evictions must never
    unlink a concurrent writer's fresh entry, and cleanup must never
    touch an in-flight temp file."""

    def _seed(self, cache):
        exp = small_exp(models=("julia",), sizes=(256,))
        SweepEngine(cache=cache, parallel=False).run(exp)
        fp = cell_fingerprint(exp, "julia", exp.shapes()[0])
        (path,) = list(cache._entry_paths())
        with open(path) as fh:
            payload = json.load(fh)["measurement"]
        return fp, path, payload

    def test_racing_processes_converge_to_one_valid_entry(self, cache):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        fp, path, payload = self._seed(cache)
        os.unlink(path)  # cold start: both racers will write
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_race_put,
                             args=(cache.root, fp, payload, 25))
                 for _ in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
        assert all(p.exitcode == 0 for p in procs)
        assert len(list(cache._entry_paths())) == 1
        assert cache.get(fp) is not None
        from repro.harness.journal import fsck_store
        report = fsck_store(cache=cache)
        assert report.clean

    def test_put_is_compare_and_swap(self, cache):
        fp, path, _ = self._seed(cache)
        m = cache.get(fp)
        # a valid entry is already on disk: the second writer backs off
        assert cache.put(fp, m) is False
        assert cache.stats.snapshot()["stores"] == 1
        os.unlink(path)
        assert cache.put(fp, m) is True
        assert cache.get(fp) is not None

    def test_evict_revalidates_before_unlink(self, cache):
        """_evict on a path holding a *valid* entry (a concurrent writer
        replaced the bad bytes after our failed read) must not unlink."""
        fp, path, _ = self._seed(cache)
        before = cache.stats.snapshot()["evictions"]
        cache._evict(path)
        assert os.path.exists(path)
        assert cache.stats.snapshot()["evictions"] == before
        assert cache.get(fp) is not None

    def test_young_tmp_survives_clear(self, cache):
        fp, path, _ = self._seed(cache)
        shard = os.path.dirname(path)
        inflight = os.path.join(shard, "inflight.tmp")
        with open(inflight, "w") as fh:
            fh.write("partial write")
        cache.clear()
        assert os.path.exists(inflight)        # younger than the grace window
        old = os.stat(inflight).st_mtime - 3600
        os.utime(inflight, (old, old))
        cache.clear()
        assert not os.path.exists(inflight)    # aged out: true orphan


class TestProcessEngine:
    """``--engine process``: sharded worker execution must be
    bit-identical to the serial reference loop in every observable —
    measurements, rendered output, traces and error classes — while the
    workers themselves write the shared cache."""

    def _engine(self, cache=None, workers=2):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        return SweepEngine(cache=cache, parallel=True, max_workers=workers,
                           mode="process")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            SweepEngine(cache=None, mode="banana")

    def test_matches_serial_bit_for_bit(self):
        exp = small_exp()
        proc = self._engine().run(exp)
        serial = run_experiment(exp, engine="serial",
                                options=RunOptions(cache=False))
        assert proc.measurements == serial.measurements

    def test_exported_json_identical_to_serial(self):
        exp = small_exp(models=("numba", "julia"))
        proc = result_set_to_json(self._engine().run(exp))
        serial = result_set_to_json(
            run_experiment(exp, engine="serial",
                           options=RunOptions(cache=False)))
        assert proc == serial

    def test_byte_identical_under_faults_and_retries(self):
        from repro.harness.engine import RetryPolicy
        from repro.sim.faults import FaultConfig
        opts = RunOptions(faults=FaultConfig.parse("rate=0.3,seed=7"),
                          retry=RetryPolicy(max_attempts=3))
        exp = small_exp()
        proc = result_set_to_json(self._engine().run(exp, options=opts))
        serial = run_experiment(exp, engine="serial",
                                options=RunOptions(
                                    cache=False, faults=opts.faults,
                                    retry=opts.retry))
        assert proc == result_set_to_json(serial)

    def test_traced_timeline_matches_serial(self):
        exp = small_exp(models=("numba", "julia"))
        serial_prof = Profiler()
        run_experiment(exp, engine="serial",
                       options=RunOptions(cache=False,
                                          profiler=serial_prof))
        proc_prof = Profiler()
        self._engine().run(exp, profiler=proc_prof)
        assert proc_prof.events == serial_prof.events

    def test_fail_fast_raises_the_original_error(self):
        from repro.harness.engine import RetryPolicy
        from repro.sim.faults import FaultConfig
        exp = small_exp(models=("julia",), sizes=(256,))

        def opts():
            return RunOptions(cache=False,
                              faults=FaultConfig(rate=0.999999, seed=1),
                              retry=RetryPolicy(max_attempts=2),
                              fail_fast=True)

        with pytest.raises(RetryExhaustedError) as serial_exc:
            run_experiment(exp, engine="serial", options=opts())
        # the worker ships the failure as a structured dict; the parent
        # must re-raise the exact class with the exact message
        with pytest.raises(RetryExhaustedError) as proc_exc:
            self._engine().run(exp, options=opts())
        assert str(proc_exc.value) == str(serial_exc.value)
        assert proc_exc.value.cell == serial_exc.value.cell
        assert proc_exc.value.attempts == serial_exc.value.attempts

    def test_workers_write_the_shared_cache(self, cache):
        exp = small_exp()
        engine = self._engine(cache=cache)
        engine.run(exp)
        assert engine.last_report.executed_cells == 4
        assert cache.stats.snapshot()["stores"] == 4
        warm = engine.run(exp)
        assert engine.last_report.cached_cells == 4
        assert all(m.supported for m in warm.measurements)

    def test_report_labels_the_fanout(self):
        engine = self._engine()
        engine.run(small_exp())
        report = engine.last_report
        assert report.engine == "process"
        assert "process x2" in report.render()


class TestObservability:
    def test_report_cells_and_timings(self, cache):
        engine = SweepEngine(cache=cache, parallel=True)
        engine.run(small_exp())
        report = engine.last_report
        assert len(report.cells) == 4
        assert report.executed_cells == 4
        assert all(c.wall_s > 0 for c in report.cells)
        assert report.wall_s > 0
        engine.run(small_exp())
        assert engine.last_report.cached_cells == 4

    def test_report_timeline_uses_trace_events(self, cache):
        engine = SweepEngine(cache=cache, parallel=False)
        engine.run(small_exp())
        prof = engine.last_report.timeline()
        assert prof.count(EventKind.CACHE_MISS) == 4
        assert prof.count(EventKind.CELL) == 4
        engine.run(small_exp())
        assert engine.last_report.timeline().count(EventKind.CACHE_HIT) == 4

    def test_report_render(self, cache):
        engine = SweepEngine(cache=cache, parallel=False)
        engine.run(small_exp())
        out = engine.last_report.render()
        assert "4 cells" in out and "[sim]" in out
        engine.run(small_exp())
        assert "[cache]" in engine.last_report.render()


class TestEnvironmentConfig:
    def test_cache_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        engine = SweepEngine.from_env()
        assert engine.cache is None

    def test_jobs_one_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        engine = SweepEngine.from_env()
        assert engine.parallel is False

    def test_engine_mode_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "process")
        engine = SweepEngine.from_env()
        assert engine.mode == "process"
        assert SweepEngine.from_env(mode="thread").mode == "thread"

    def test_engine_mode_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert SweepEngine.from_env().mode == "thread"

    def test_engine_mode_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "quantum")
        with pytest.raises(ConfigError):
            SweepEngine.from_env()

    def test_cache_dir_relocation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        engine = SweepEngine.from_env()
        assert engine.cache.root == str(tmp_path / "elsewhere")

    def test_default_engine_is_process_wide(self, fresh_default_engine):
        assert default_engine() is fresh_default_engine

    def test_run_experiment_uses_default_engine(self, fresh_default_engine):
        exp = small_exp(models=("c-openmp",), sizes=(256,))
        run_experiment(exp)
        assert fresh_default_engine.last_report is not None
        assert fresh_default_engine.last_report.experiment_id == "eng-cpu"


class TestWarmSpeedup:
    def test_warm_run_at_least_5x_faster_and_identical(self, cache):
        """The acceptance bar: warm >= 5x cold, output bit-identical."""
        exp = small_exp(models=("c-openmp", "kokkos", "julia", "numba"),
                        sizes=(512, 1024, 2048))
        engine = SweepEngine(cache=cache, parallel=False)
        t0 = time.perf_counter()
        cold = engine.run(exp)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = engine.run(exp)
        t_warm = time.perf_counter() - t0
        assert cold.measurements == warm.measurements
        assert t_cold / t_warm >= 5.0, (t_cold, t_warm)
