"""Tests for the kernel IR linter: dependence analysis, race detection,
diagnostics, and pass-legality gating in the pipeline."""

import pytest

from repro.core.types import Layout, Precision
from repro.errors import IRVerificationError, LintError
from repro.ir import builder
from repro.ir.lint import (
    CODES,
    DependenceKind,
    Diagnostic,
    DiagnosticSet,
    Severity,
    analyze_dependences,
    interchange_legal,
    lint_kernel,
    lint_registry,
    provably_in_bounds,
    race_diagnostics,
)
from repro.ir.nodes import (
    ArrayDecl,
    ArrayRef,
    AxisRole,
    Body,
    FMAOp,
    IndexExpr,
    Kernel,
    LoadOp,
    Loop,
    ParallelKind,
    StoreOp,
)
from repro.ir.passes import (
    ElideBoundsChecks,
    InterchangeLoops,
    LoopInvariantMotion,
    PassPipeline,
    UnrollInnerLoop,
    VectorizeInnerLoop,
)

P = Precision.FP64


def _shifted_stencil() -> Kernel:
    """W: A[i,j] = f(A[i-1,j+1]) — flow dependence with direction (<, >)."""
    a = ArrayDecl("A", "A", (AxisRole.M, AxisRole.N), Layout.ROW_MAJOR, P)
    read = ArrayRef("A", (IndexExpr((("i", 1),), -1), IndexExpr((("j", 1),), 1)))
    write = ArrayRef("A", (IndexExpr.var("i"), IndexExpr.var("j")))
    return Kernel(
        name="stencil",
        arrays=(a,),
        loops=(Loop("i", AxisRole.M), Loop("j", AxisRole.N)),
        body=Body(loads=(LoadOp(read),), fmas=(FMAOp(read, read),),
                  stores=(StoreOp(write),)),
        precision=P,
    )


class TestDependences:
    def test_rmw_kernel_carries_flow_anti_output_on_k(self):
        k = builder.c_openmp_cpu(P)  # order ikj, RMW of C[i,j]
        deps = {d.kind for d in analyze_dependences(k) if d.array == "C"
                and d.carried_by == "k"}
        assert deps == {DependenceKind.FLOW, DependenceKind.ANTI,
                        DependenceKind.OUTPUT}

    def test_rmw_direction_vector(self):
        k = builder.c_openmp_cpu(P)
        flow = [d for d in analyze_dependences(k)
                if d.kind is DependenceKind.FLOW and d.array == "C"]
        assert len(flow) == 1
        # nest order is i, k, j: carried by the middle (k) loop
        assert flow[0].direction == ("=", "<", "=")
        assert flow[0].distance[0] == 0 and flow[0].distance[2] == 0

    def test_loop_independent_anti_dependence(self):
        k = builder.c_openmp_cpu(P)
        indep = [d for d in analyze_dependences(k) if d.loop_independent]
        assert indep and all(d.kind is DependenceKind.ANTI for d in indep)

    def test_scalar_accum_gpu_kernel_has_no_c_dependences(self):
        k = builder.gpu_thread_per_element("g", P, Layout.ROW_MAJOR)
        # C is stored once per thread, after the k loop: nothing carried.
        assert not analyze_dependences(k)

    def test_stencil_direction(self):
        deps = analyze_dependences(_shifted_stencil())
        flow = [d for d in deps if d.kind is DependenceKind.FLOW]
        assert len(flow) == 1
        assert flow[0].direction == ("<", ">")
        assert flow[0].distance == (1, -1)
        assert flow[0].carried_by == "i"


class TestInterchangeLegality:
    def test_rmw_permutations_legal(self):
        k = builder.c_openmp_cpu(P)  # ikj
        for order in ("ijk", "jik", "kij", "kji", "jki"):
            ok, why = interchange_legal(k, order)
            assert ok, f"{order}: {why}"

    def test_stencil_swap_illegal(self):
        ok, why = interchange_legal(_shifted_stencil(), "ji")
        assert not ok
        assert "reversed" in why

    def test_non_permutation_rejected(self):
        ok, why = interchange_legal(builder.c_openmp_cpu(P), "iij")
        assert not ok and "permutation" in why


class TestRaces:
    def test_worksharing_reduction_loop_races(self):
        # parallelise k: every worker read-modify-writes the same C[i,j]
        k = builder.build_gemm("race-cpu", P, "kij", Layout.ROW_MAJOR,
                               parallel_vars=("k",))
        codes = [d.code for d in race_diagnostics(k)]
        assert codes == ["R001"]

    def test_grid_reduction_dimension_races(self):
        k = builder.build_gemm("race-gpu", P, "ikj", Layout.ROW_MAJOR,
                               parallel_vars=("i", "k"),
                               parallel_kind=ParallelKind.GRID)
        codes = [d.code for d in race_diagnostics(k)]
        assert codes == ["R002"]

    def test_store_hoisted_outside_parallel_loop(self):
        k = builder.gpu_thread_per_element("g", P, Layout.ROW_MAJOR)
        stores = tuple(StoreOp(st.ref, hoisted_above="j")
                       for st in k.body.stores)
        k = k.replace(body=k.body.with_(stores=stores))
        codes = [d.code for d in race_diagnostics(k)]
        assert codes == ["R003"]

    def test_paper_kernels_race_free(self):
        for kern in (builder.c_openmp_cpu(P), builder.julia_threads_cpu(P),
                     builder.kokkos_cpu(P),
                     builder.gpu_thread_per_element("g", P, Layout.COL_MAJOR)):
            assert race_diagnostics(kern) == []


class TestBoundsProofs:
    def test_canonical_refs_in_bounds(self):
        k = builder.c_openmp_cpu(P)
        for ref in k.all_refs():
            ok, why = provably_in_bounds(k, ref)
            assert ok, why

    def test_offset_ref_not_provable(self):
        k = builder.c_openmp_cpu(P)
        shifted = ArrayRef("A", (IndexExpr.var("i"),
                                 IndexExpr((("k", 1),), 1)))
        ok, why = provably_in_bounds(k, shifted)
        assert not ok and "bare loop variable" in why

    def test_axis_mismatch_not_provable(self):
        k = builder.c_openmp_cpu(P)
        transposed = ArrayRef("B", (IndexExpr.var("j"), IndexExpr.var("k")))
        ok, why = provably_in_bounds(k, transposed)
        assert not ok and "extends over" in why


class TestPipelineGating:
    def test_illegal_interchange_rejected_with_code(self):
        # kokkos kernel is scalar-accum: k must stay innermost
        k = builder.kokkos_cpu(P)
        with pytest.raises(LintError) as exc:
            PassPipeline([InterchangeLoops("ikj")]).run(k, context="test")
        assert "L001" in exc.value.codes
        assert exc.value.kernel == k.name
        assert exc.value.context == "test"

    def test_forced_vectorize_of_strict_reduction_rejected(self):
        k = builder.kokkos_cpu(P)  # strict FP, scalar accum over k
        with pytest.raises(LintError) as exc:
            PassPipeline([VectorizeInnerLoop(4, force=True)]).run(k)
        assert exc.value.codes == ("L002",)

    def test_unproved_bounds_elision_rejected(self):
        k = builder.build_gemm("b", P, "ikj", Layout.ROW_MAJOR,
                               bounds_checks=True, hoist_invariant=False)
        shifted = ArrayRef("A", (IndexExpr.var("i"),
                                 IndexExpr((("k", 1),), 1)))
        loads = tuple(LoadOp(shifted) if ld.ref.array == "A" else ld
                      for ld in k.body.loads)
        k = k.replace(body=k.body.with_(loads=loads))
        with pytest.raises(LintError) as exc:
            PassPipeline([ElideBoundsChecks()]).run(k)
        assert exc.value.codes == ("L003",)

    def test_hoist_across_dependent_store_rejected(self):
        a = ArrayDecl("A", "A", (AxisRole.M, AxisRole.N), Layout.ROW_MAJOR, P)
        row0 = ArrayRef("A", (IndexExpr.var("i"), IndexExpr()))
        cell = ArrayRef("A", (IndexExpr.var("i"), IndexExpr.var("j")))
        k = Kernel(
            name="hoist-trap", arrays=(a,),
            loops=(Loop("i", AxisRole.M), Loop("j", AxisRole.N)),
            body=Body(loads=(LoadOp(row0),), fmas=(FMAOp(row0, row0),),
                      stores=(StoreOp(cell),)),
            precision=P,
        )
        with pytest.raises(LintError) as exc:
            PassPipeline([LoopInvariantMotion()]).run(k)
        assert exc.value.codes == ("L004",)

    def test_legal_pipelines_unaffected(self):
        k = builder.c_openmp_cpu(P)
        out, records = PassPipeline([
            LoopInvariantMotion(), VectorizeInnerLoop(8), UnrollInnerLoop(4),
        ]).run(k)
        assert out.inner.vector_width == 8 and out.inner.unroll == 4

    def test_ungated_pipeline_skips_preconditions(self):
        k = builder.kokkos_cpu(P)
        pipe = PassPipeline([VectorizeInnerLoop(4, force=True)], gate=False)
        out, _ = pipe.run(k)
        assert out.inner.vector_width == 4

    def test_direct_pass_run_stays_ungated(self):
        k = builder.kokkos_cpu(P)
        out = VectorizeInnerLoop(4, force=True).run(k)
        assert out.inner.vector_width == 4

    def test_strict_unroll_records_info_diagnostic(self):
        k = builder.gpu_thread_per_element("g", P, Layout.ROW_MAJOR)
        _, records = PassPipeline([UnrollInnerLoop(4)]).run(k)
        rec = next(r for r in records if r.name == "unroll")
        assert [d.code for d in rec.diagnostics] == ["W002"]
        assert all(not d.is_error for d in rec.diagnostics)

    def test_lint_error_is_verification_error(self):
        assert issubclass(LintError, IRVerificationError)


class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="Z999", severity=Severity.ERROR, message="x")

    def test_all_codes_have_meanings(self):
        assert all(CODES[c] for c in CODES)
        assert {"V001", "D001", "R001", "R002", "R003", "L001", "L002",
                "L003", "L004", "L005", "W001", "W002", "W003"} <= set(CODES)

    def test_set_filters_and_sort(self):
        s = DiagnosticSet()
        s.add(Diagnostic("D001", Severity.INFO, "dep", kernel="k"))
        s.extend([Diagnostic("R001", Severity.ERROR, "race", kernel="k"),
                  Diagnostic("W001", Severity.WARNING, "stride", kernel="k")])
        assert len(s) == 3 and bool(s)
        assert [d.code for d in s.errors] == ["R001"]
        assert [d.code for d in s.warnings] == ["W001"]
        assert [d.code for d in s.infos] == ["D001"]
        assert [d.code for d in s.sorted()] == ["R001", "W001", "D001"]

    def test_render_aligns_columns(self):
        s = DiagnosticSet([
            Diagnostic("R001", Severity.ERROR, "first", kernel="kern-a"),
            Diagnostic("D001", Severity.INFO, "second", kernel="k"),
        ])
        out = s.render()
        assert "R001" in out and "D001" in out
        assert out.splitlines()[0].index("kern-a") == \
            out.splitlines()[1].index("k")

    def test_empty_render(self):
        assert DiagnosticSet().render() == "no findings"


class TestLintKernel:
    def test_race_kernel_reported(self):
        k = builder.build_gemm("race-cpu", P, "kij", Layout.ROW_MAJOR,
                               parallel_vars=("k",))
        diags = lint_kernel(k)
        assert "R001" in diags.codes and diags.errors

    def test_unverifiable_kernel_reports_v001(self):
        k = builder.c_openmp_cpu(P)
        broken = k.replace(body=k.body.with_(fmas=()))
        diags = lint_kernel(broken)
        assert diags.codes == ("V001",)

    def test_clean_kernel_has_dependence_facts_only(self):
        diags = lint_kernel(builder.c_openmp_cpu(P))
        assert not diags.errors
        assert "D001" in diags.codes

    def test_strided_store_warned(self):
        # column-major RMW kernel with j innermost: C[i,j] walks a column
        # stride of M elements on every store.
        k = builder.build_gemm("strided", P, "ikj", Layout.COL_MAJOR,
                               parallel_vars=("i",))
        diags = lint_kernel(k)
        assert "W001" in diags.codes


class TestRegistrySweep:
    def test_all_registered_lowerings_lint_clean(self):
        results = lint_registry()
        assert results
        bad = [r for r in results if not r.skipped and r.error_count]
        assert not bad, [(r.model, r.target, r.precision,
                          [d.code for d in r.diagnostics]) for r in bad]

    def test_unsupported_combos_skipped_not_failed(self):
        results = lint_registry(models=["numba"], device="gpu")
        mi250x = [r for r in results if "MI250X" in r.target]
        assert mi250x and all(r.skipped for r in mi250x)

    def test_cuda_lowering_carries_w002_info(self):
        from repro.ir.lint import lint_lowering
        from repro.machine import gpu_by_name
        from repro.models import model_by_name
        diags = lint_lowering(model_by_name("cuda"), gpu_by_name("a100"),
                              Precision.FP64)
        assert "W002" in diags.codes and not diags.errors

    def test_bad_device_rejected(self):
        with pytest.raises(ValueError):
            lint_registry(device="tpu")
