"""Tests for the real, runnable GEMM kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays.random import FillPolicy, make_gemm_operands
from repro.core.types import Layout, MatrixShape, Precision
from repro.errors import KernelValidationError
from repro.kernels import (
    LOOP_ORDERS,
    gemm_blocked,
    gemm_colwise,
    gemm_dot_rows,
    gemm_ijk_accum,
    gemm_outer,
    gemm_rowwise,
    naive_gemm,
    pick_block_size,
    reference_gemm,
    tolerance_for,
    validate_kernel,
)

SMALL = MatrixShape(9, 7, 11)

shapes = st.tuples(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12))


class TestNaiveOrders:
    @pytest.mark.parametrize("order", sorted(LOOP_ORDERS))
    def test_order_matches_reference(self, order):
        validate_kernel(LOOP_ORDERS[order], SMALL)

    @pytest.mark.parametrize("order", sorted(LOOP_ORDERS))
    def test_order_col_major(self, order):
        validate_kernel(LOOP_ORDERS[order], SMALL, layout=Layout.COL_MAJOR)

    def test_accumulating_semantics(self):
        """CPU kernels accumulate into a non-zero C."""
        a, b, c = make_gemm_operands(4, 4, 4, Precision.FP64,
                                     Layout.ROW_MAJOR, FillPolicy(seed=3))
        c[:] = 1.0
        naive_gemm("ikj", a, b, c)
        expected = 1.0 + reference_gemm(a, b, Precision.FP64)
        np.testing.assert_allclose(c, expected, rtol=1e-12)

    def test_accum_kernel_overwrites(self):
        """The GPU-style kernel stores, not accumulates."""
        a, b, c = make_gemm_operands(4, 4, 4, Precision.FP64,
                                     Layout.ROW_MAJOR, FillPolicy(seed=3))
        c[:] = 123.0
        gemm_ijk_accum(a, b, c)
        np.testing.assert_allclose(c, reference_gemm(a, b, Precision.FP64),
                                   rtol=1e-12)

    def test_unknown_order_rejected(self):
        a, b, c = make_gemm_operands(2, 2, 2, Precision.FP64,
                                     Layout.ROW_MAJOR, FillPolicy(seed=3))
        with pytest.raises(ValueError):
            naive_gemm("abc", a, b, c)

    def test_shape_mismatch_rejected(self):
        a = np.zeros((2, 3))
        b = np.zeros((4, 2))  # K mismatch
        c = np.zeros((2, 2))
        with pytest.raises(ValueError):
            naive_gemm("ijk", a, b, c)

    @given(shapes)
    @settings(max_examples=15, deadline=None)
    def test_all_orders_agree(self, dims):
        """Loop interchange is semantics-preserving on real data."""
        m, n, k = dims
        a, b, c0 = make_gemm_operands(m, n, k, Precision.FP64,
                                      Layout.ROW_MAJOR, FillPolicy(seed=9))
        results = []
        for order, fn in sorted(LOOP_ORDERS.items()):
            c = c0.copy()
            fn(a, b, c)
            results.append(c)
        for c in results[1:]:
            np.testing.assert_allclose(c, results[0], rtol=1e-10)


class TestVectorizedKernels:
    @pytest.mark.parametrize("fn", [gemm_rowwise, gemm_colwise, gemm_outer,
                                    gemm_dot_rows])
    def test_matches_reference(self, fn):
        validate_kernel(fn, MatrixShape(33, 17, 21), Precision.FP32)

    @pytest.mark.parametrize("fn", [gemm_rowwise, gemm_colwise])
    def test_layouts(self, fn):
        validate_kernel(fn, MatrixShape(16, 16, 16), layout=Layout.COL_MAJOR)


class TestBlocked:
    @pytest.mark.parametrize("block", [1, 3, 8, 64])
    def test_blocked_matches(self, block):
        validate_kernel(lambda a, b, c: gemm_blocked(a, b, c, block),
                        MatrixShape(33, 17, 21))

    def test_rejects_zero_block(self):
        a, b, c = make_gemm_operands(2, 2, 2, Precision.FP64,
                                     Layout.ROW_MAJOR, FillPolicy(seed=3))
        with pytest.raises(ValueError):
            gemm_blocked(a, b, c, 0)

    def test_pick_block_size(self):
        # 32 KiB L1, fp64: 3 * b^2 * 8 <= 32768 -> b <= 36 -> 32
        assert pick_block_size(32 * 1024, 8) == 32

    def test_pick_block_size_floor(self):
        assert pick_block_size(100, 8) == 8  # never below 8

    def test_pick_block_rejects_garbage(self):
        with pytest.raises(ValueError):
            pick_block_size(0, 8)


class TestPrecisionPaths:
    def test_fp16_accumulates_in_fp32(self):
        a, b, c = make_gemm_operands(8, 8, 8, Precision.FP16,
                                     Layout.ROW_MAJOR, FillPolicy(seed=5))
        assert c.dtype == np.float32
        naive_gemm("ikj", a, b, c)
        expected = reference_gemm(a, b, Precision.FP16)
        rtol = tolerance_for(Precision.FP16, 8)
        np.testing.assert_allclose(c, expected, rtol=rtol)

    def test_ones_fp16_exact(self):
        """The Numba fallback: all-ones inputs give C == K exactly."""
        a, b, c = make_gemm_operands(8, 8, 16, Precision.FP16,
                                     Layout.ROW_MAJOR,
                                     FillPolicy(random_fp16=False))
        naive_gemm("ikj", a, b, c)
        assert np.all(c == 16.0)

    def test_validation_catches_wrong_kernel(self):
        def broken(a, b, c):
            c += (a @ b) * 1.01  # 1% error

        with pytest.raises(KernelValidationError):
            validate_kernel(broken, MatrixShape(8, 8, 8))

    def test_validation_catches_nan(self):
        def nan_kernel(a, b, c):
            c[:] = np.nan

        with pytest.raises(KernelValidationError):
            validate_kernel(nan_kernel, MatrixShape(4, 4, 4),
                            accumulates=False)

    def test_tolerance_grows_with_k(self):
        assert tolerance_for(Precision.FP64, 10000) > tolerance_for(Precision.FP64, 10)

    def test_tolerance_ordering(self):
        assert (tolerance_for(Precision.FP16, 64)
                > tolerance_for(Precision.FP32, 64)
                > tolerance_for(Precision.FP64, 64))
