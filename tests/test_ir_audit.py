"""Tests for the static performance-portability auditor (``repro audit``).

Three layers: per-pass units against hand-built IR fixtures, the
cross-checks that tie the auditor to the simulator's own memory and
occupancy models, and the end-to-end guarantees — every lane audited,
verdicts agreeing with the measured seed-GEMM efficiencies of Table III.
"""

import math

import pytest

from repro.core.types import Layout, MatrixShape, Precision
from repro.gpu import IssueProfile, LaunchConfig, paper_launch, simulate_gpu_kernel
from repro.ir import builder
from repro.ir.audit import (
    AUDIT_SHAPE,
    Band,
    audit_lowering,
    audit_registry,
    check_consistency,
    classify_band,
    classify_gpu_accesses,
    cpu_issue_estimate,
    cpu_memory_diagnostics,
    crosscheck_coalescing,
    estimate_registers,
    footprint_diagnostics,
    gpu_issue_estimate,
    gpu_memory_diagnostics,
    locality_diagnostics,
    precision_diagnostics,
    residency_diagnostics,
)
from repro.ir.lint import Severity
from repro.machine import CPU_CATALOG, GPU_CATALOG
from repro.models import model_by_name
from repro.models.base import Support
from repro.sched.affinity import PinPolicy

A100 = GPU_CATALOG["a100"]
MI250X = GPU_CATALOG["mi250x"]
EPYC = CPU_CATALOG["epyc-7a53"]
ALTRA = CPU_CATALOG["ampere-altra"]

SHAPE = MatrixShape.square(4096)
OK = Support(supported=True, reason="")


def gpu_kernel(precision=Precision.FP64, layout=Layout.ROW_MAJOR):
    return builder.gpu_thread_per_element("g", precision, layout)


def _codes(diags):
    return {d.code for d in diags}


# --------------------------------------------------------------------------
# P-series: memory access
# --------------------------------------------------------------------------

class TestGPUMemory:
    def test_row_major_x_over_j_coalesces(self):
        """CUDA's mapping: x -> j, row-major => B and C contiguous."""
        diags, report = gpu_memory_diagnostics(
            gpu_kernel(), paper_launch("j"), A100, SHAPE)
        assert "P001" not in _codes(diags)
        assert report.worst_pattern != "strided"

    def test_col_major_x_over_j_is_strided(self):
        """Kokkos on CUDA (Sec. IV-B): LayoutLeft under an x->j map."""
        diags, report = gpu_memory_diagnostics(
            gpu_kernel(layout=Layout.COL_MAJOR), paper_launch("j"),
            A100, SHAPE)
        strided = [d for d in diags if d.code == "P001"]
        assert strided, "expected an uncoalesced-access finding"
        assert all(d.severity is Severity.WARNING for d in strided)
        # the per-k B load is the offender: stride k across threadIdx.x
        assert any("B" in d.subject for d in strided)

    def test_classification_flags_per_k_accesses(self):
        accesses = classify_gpu_accesses(
            gpu_kernel(layout=Layout.COL_MAJOR), paper_launch("j"),
            A100, SHAPE)
        b = next(a for a in accesses if a.array == "B")
        assert b.pattern == "strided"
        assert b.per_k_iteration
        assert b.transactions_per_warp == A100.warp_size

    def test_crosscheck_agrees_on_every_registry_gpu_lane(self):
        """The auditor's re-derivation must match gpu.coalescing exactly."""
        for name in ("cuda", "hip", "kokkos", "julia", "numba",
                     "kernelabstractions"):
            model = model_by_name(name)
            for spec in (A100, MI250X):
                for prec in (Precision.FP64, Precision.FP32):
                    if not model.supports(spec, prec).supported:
                        continue
                    low = model.lower_gpu(spec, prec)
                    # raises AuditError on any disagreement
                    crosscheck_coalescing(low.kernel, low.launch, spec, SHAPE)


class TestCPUMemory:
    def test_jki_row_major_strided_inner(self):
        """Row-major A walked down a column in the fastest loop."""
        k = builder.build_gemm("bad", Precision.FP64, "jki",
                               Layout.ROW_MAJOR, parallel_vars=("j",))
        diags = cpu_memory_diagnostics(k, EPYC, SHAPE)
        assert "P002" in _codes(diags)

    def test_ikj_row_major_clean(self):
        k = builder.build_gemm("good", Precision.FP64, "ikj",
                               Layout.ROW_MAJOR)
        assert not cpu_memory_diagnostics(k, EPYC, SHAPE)


class TestLocality:
    def test_unpinned_multi_numa_flags(self):
        k = builder.numba_cpu(Precision.FP64)
        diags = locality_diagnostics(k, PinPolicy.NONE, EPYC)
        assert _codes(diags) == {"P003"}

    def test_single_numa_or_pinned_clean(self):
        k = builder.numba_cpu(Precision.FP64)
        assert not locality_diagnostics(k, PinPolicy.NONE, ALTRA)
        assert not locality_diagnostics(k, PinPolicy.COMPACT, EPYC)


class TestFootprint:
    def test_thrash_threshold_crossing(self):
        k = gpu_kernel()
        tight = IssueProfile(thrash_threshold_bytes=5.0e9, thrash_factor=1.2)
        big = MatrixShape.square(16384)   # 3 * 16384^2 * 8 B = 6.4 GB
        diags = footprint_diagnostics(k, tight, big)
        assert _codes(diags) == {"P004"}
        assert not footprint_diagnostics(k, IssueProfile(), big)


# --------------------------------------------------------------------------
# O-series: occupancy / registers
# --------------------------------------------------------------------------

class TestResidency:
    def test_numba_register_pressure_halves_occupancy(self):
        """The Numba lane's bookkeeping uniquely drops a resident block."""
        numba = model_by_name("numba").lower_gpu(A100, Precision.FP64)
        diags, nominal, pressured, est = residency_diagnostics(
            numba.kernel, numba.launch, A100, numba.profile)
        assert est.per_thread > 32
        assert nominal.blocks_per_cu == 2
        assert pressured.blocks_per_cu == 1
        assert {"O001", "O002", "O003"} <= _codes(diags)

    def test_vendor_lane_keeps_nominal_residency(self):
        cuda = model_by_name("cuda").lower_gpu(A100, Precision.FP64)
        diags, nominal, pressured, est = residency_diagnostics(
            cuda.kernel, cuda.launch, A100, cuda.profile)
        assert est.per_thread <= 32
        assert pressured.blocks_per_cu == nominal.blocks_per_cu == 2
        assert not _codes(diags) & {"O001", "O002", "O003"}

    def test_register_estimate_scales_with_unroll(self):
        from repro.ir.passes import UnrollInnerLoop

        base = gpu_kernel()
        rolled = estimate_registers(base, IssueProfile())
        unrolled = estimate_registers(UnrollInnerLoop(4).run(base),
                                      IssueProfile())
        assert unrolled.per_thread > rolled.per_thread

    def test_partial_warp_block_flags_o004(self):
        diags, *_ = residency_diagnostics(
            gpu_kernel(), LaunchConfig(24, 2, "j"), A100, IssueProfile())
        assert "O004" in _codes(diags)


# --------------------------------------------------------------------------
# F-series: precision flow
# --------------------------------------------------------------------------

class TestPrecisionFlow:
    def test_fp16_mixed_accumulator_info(self):
        diags = precision_diagnostics(gpu_kernel(Precision.FP16),
                                      Precision.FP16, OK, SHAPE)
        assert "F001" in _codes(diags)

    def test_fastmath_fp32_warns_fp64_informs(self):
        k32 = builder.numba_cpu(Precision.FP32)
        k64 = builder.numba_cpu(Precision.FP64)
        assert k32.fastmath and k64.fastmath
        assert "F002" in _codes(precision_diagnostics(
            k32, Precision.FP32, OK, SHAPE))
        d64 = precision_diagnostics(k64, Precision.FP64, OK, SHAPE)
        assert "F003" in _codes(d64)
        assert all(d.severity is Severity.INFO for d in d64)

    def test_short_reduction_is_quiet(self):
        k32 = builder.numba_cpu(Precision.FP32)
        small = MatrixShape.square(256)
        assert "F002" not in _codes(precision_diagnostics(
            k32, Precision.FP32, OK, small))

    def test_strict_fp_is_quiet(self):
        k = builder.c_openmp_cpu(Precision.FP32)
        assert not k.fastmath
        assert not precision_diagnostics(k, Precision.FP32, OK, SHAPE)

    def test_degraded_support_warns(self):
        deg = Support(supported=True, reason="scalar fallback",
                      degraded=True)
        diags = precision_diagnostics(builder.julia_threads_cpu(
            Precision.FP16), Precision.FP16, deg, SHAPE)
        assert "F004" in _codes(diags)


# --------------------------------------------------------------------------
# Verdicts: the static issue model against the simulator's
# --------------------------------------------------------------------------

class TestStaticEstimates:
    def test_gpu_estimate_matches_warp_sim_exactly(self):
        """The static issue model must be the simulator's, term for term."""
        for name in ("cuda", "hip", "kokkos", "julia", "numba",
                     "kernelabstractions"):
            model = model_by_name(name)
            for spec in (A100, MI250X):
                for prec in (Precision.FP64, Precision.FP32):
                    if not model.supports(spec, prec).supported:
                        continue
                    low = model.lower_gpu(spec, prec)
                    est = gpu_issue_estimate(low.kernel, low.launch, spec,
                                             low.profile, SHAPE)
                    timing = simulate_gpu_kernel(low.kernel, low.launch,
                                                 spec, SHAPE, low.profile)
                    assert est.cycles == pytest.approx(
                        timing.issue_cycles_per_iter, rel=1e-12), (
                        f"{name}@{spec.name}/{prec.value}")

    def test_numba_a100_is_int_bound(self):
        numba = model_by_name("numba").lower_gpu(A100, Precision.FP64)
        est = gpu_issue_estimate(numba.kernel, numba.launch, A100,
                                 numba.profile, SHAPE)
        assert est.bound == "int"

    def test_cuda_a100_fp64_is_l2_bound(self):
        cuda = model_by_name("cuda").lower_gpu(A100, Precision.FP64)
        est = gpu_issue_estimate(cuda.kernel, cuda.launch, A100,
                                 cuda.profile, SHAPE)
        assert est.bound == "l2"

    def test_cpu_migration_tax_applied_only_when_unpinned_multi_numa(self):
        numba = model_by_name("numba")
        est_epyc = cpu_issue_estimate(
            *(lambda low: (low.kernel, EPYC, low.profile, low.pin))(
                numba.lower_cpu(EPYC, Precision.FP64)), SHAPE)
        est_altra = cpu_issue_estimate(
            *(lambda low: (low.kernel, ALTRA, low.profile, low.pin))(
                numba.lower_cpu(ALTRA, Precision.FP64)), SHAPE)
        assert est_epyc.migration_tax > 1.0
        assert est_altra.migration_tax == 1.0

    def test_band_boundaries(self):
        assert classify_band(0.75) is Band.HIGH
        assert classify_band(0.60) is Band.MEDIUM
        assert classify_band(0.35) is Band.MEDIUM
        assert classify_band(0.3499) is Band.LOW


# --------------------------------------------------------------------------
# End to end: lanes, verdicts, Table III agreement
# --------------------------------------------------------------------------

class TestAuditRegistry:
    @pytest.fixture(scope="class")
    def sweep(self):
        return audit_registry()

    def test_every_lane_present(self, sweep):
        from repro.models import all_models

        n_models = len(all_models(include_extensions=True))
        n_specs = len(CPU_CATALOG) + len(GPU_CATALOG)
        assert len(sweep) == n_models * n_specs * len(Precision)

    def test_no_error_severity_findings(self, sweep):
        assert all(r.error_count == 0 for r in sweep)

    def test_every_audited_lane_has_a_verdict(self, sweep):
        assert all(r.verdict is not None for r in sweep if not r.skipped)

    def test_fp16_lanes_have_no_reference_ratio(self, sweep):
        fp16 = [r for r in sweep if not r.skipped and r.precision == "fp16"]
        assert fp16
        assert all(r.verdict.predicted_efficiency is None for r in fp16)
        assert all(r.verdict.band is None for r in fp16)

    def test_reference_lanes_are_unity(self, sweep):
        for r in sweep:
            if r.skipped or r.model not in ("c-openmp", "cuda", "hip"):
                continue
            assert r.verdict.predicted_efficiency == 1.0
            assert r.verdict.band is Band.HIGH

    def test_expected_hazards_per_lane(self, sweep):
        """The signature findings of the paper's four failure stories."""
        by_lane = {(r.model, r.target, r.precision): r for r in sweep}
        kokkos_a100 = by_lane[("kokkos", A100.name, "fp64")]
        assert "P001" in kokkos_a100.verdict.hazards
        numba_a100 = by_lane[("numba", A100.name, "fp64")]
        assert {"O001", "O002", "O003"} <= set(numba_a100.verdict.hazards)
        numba_epyc = by_lane[("numba", EPYC.name, "fp64")]
        assert "P003" in numba_epyc.verdict.hazards
        kokkos_mi = by_lane[("kokkos", MI250X.name, "fp64")]
        assert any(d.code == "P004" for d in kokkos_mi.diagnostics)

    def test_predictions_track_published_table3(self, sweep):
        """Static verdicts land within 0.05 of the published e_i."""
        from repro.harness.figures import PAPER_TABLE3

        label_to_spec = {"Epyc 7A53": EPYC, "Ampere Altra": ALTRA,
                         "MI250x": MI250X, "A100": A100}
        by_lane = {(r.model, r.target, r.precision): r for r in sweep}
        checked = 0
        for prec, per_model in PAPER_TABLE3.items():
            for model, cells in per_model.items():
                for label, published in cells.items():
                    if published is None:
                        continue
                    lane = by_lane[(model, label_to_spec[label].name,
                                    prec.value)]
                    predicted = lane.verdict.predicted_efficiency
                    assert predicted == pytest.approx(published, abs=0.05), (
                        f"{model}@{label}/{prec.value}")
                    checked += 1
        assert checked == 22


class TestConsistency:
    @pytest.fixture(scope="class")
    def report(self):
        return check_consistency()

    def test_static_verdicts_do_not_contradict_the_simulator(self, report):
        assert report.conflicts == []
        assert report.consistent

    def test_bands_agree_on_every_lane(self, report):
        assert len(report.lanes) == 22
        assert all(lane.band_agrees for lane in report.lanes)

    def test_static_tracks_measured_within_tolerance(self, report):
        for lane in report.lanes:
            assert math.isclose(lane.predicted, lane.measured,
                                abs_tol=0.05), (
                f"{lane.model}@{lane.platform}/{lane.precision}")


class TestAuditLowering:
    def test_returns_diags_and_verdict(self):
        diags, verdict = audit_lowering(model_by_name("kokkos"), A100,
                                        Precision.FP64)
        assert verdict is not None
        assert verdict.reference == "cuda"
        assert verdict.band is Band.LOW
        assert verdict.occupancy_fraction is not None

    def test_cpu_lane_has_no_occupancy(self):
        _, verdict = audit_lowering(model_by_name("julia"), EPYC,
                                    Precision.FP64)
        assert verdict.occupancy_fraction is None
        assert verdict.reference == "c-openmp"

    def test_audit_shape_reaches_long_reduction(self):
        from repro.ir.audit import LONG_REDUCTION_K

        assert AUDIT_SHAPE.k >= LONG_REDUCTION_K
