"""Tests for IR analysis: instruction mixes and memory-reference info."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import Layout, MatrixShape, Precision
from repro.ir import builder
from repro.ir.analysis import (
    StrideClass,
    executions_of,
    flop_count,
    instruction_mix,
    reference_info,
)
from repro.ir.passes import UnrollInnerLoop, VectorizeInnerLoop


SHAPE = MatrixShape(32, 16, 8)


class TestExecutions:
    def test_inner_statement_runs_mnk_times(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        assert executions_of(k, None, SHAPE) == 32 * 16 * 8

    def test_hoisted_statement_runs_outer_product_times(self):
        k = builder.c_openmp_cpu(Precision.FP64)  # order ikj; A hoisted above j
        assert executions_of(k, "j", SHAPE) == 32 * 8

    def test_hoisted_above_outermost(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        assert executions_of(k, "i", SHAPE) == 1


class TestInstructionMix:
    def test_flops_always_2mnk(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        assert instruction_mix(k, SHAPE).flops == flop_count(SHAPE) == 2 * 32 * 16 * 8

    def test_vectorization_divides_fma_issues(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        base = instruction_mix(k, SHAPE)
        vec = instruction_mix(VectorizeInnerLoop(4).run(k), SHAPE)
        assert vec.fma_issues == pytest.approx(base.fma_issues / 4)
        assert vec.flops == base.flops  # work is invariant

    def test_unroll_amortises_loop_control(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        base = instruction_mix(k, SHAPE)
        un = instruction_mix(UnrollInnerLoop(4).run(k), SHAPE)
        assert un.branch_ops < base.branch_ops
        assert un.fma_issues == base.fma_issues  # unroll alone keeps issues

    def test_hoisted_loads_cheaper_than_inner(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        mix = instruction_mix(k, SHAPE)
        # loads: A hoisted (M*K) + B (M*N*K) + C (M*N*K)
        expected = 32 * 8 + 2 * 32 * 16 * 8
        assert mix.load_issues == pytest.approx(expected)

    def test_gpu_guard_counted_once_per_thread(self):
        k = builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR)
        mix = instruction_mix(k, SHAPE)
        assert mix.guard_ops == 32 * 16  # one per (i, j) thread

    def test_reduction_chain_flag(self):
        gpu = builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR)
        cpu = builder.c_openmp_cpu(Precision.FP64)
        assert instruction_mix(gpu, SHAPE).has_reduction_chain
        assert not instruction_mix(cpu, SHAPE).has_reduction_chain

    def test_fastmath_unroll_gives_accum_streams(self):
        k = builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR)
        k = k.replace(fastmath=True)
        k4 = UnrollInnerLoop(4).run(k)
        assert instruction_mix(k4, SHAPE).accum_streams == 4

    def test_strict_fp_keeps_one_stream(self):
        k = builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR)
        k4 = UnrollInnerLoop(4).run(k)
        assert instruction_mix(k4, SHAPE).accum_streams == 1

    @given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_issue_slots_bounded_below_by_fma(self, m, n, k):
        shape = MatrixShape(m, n, k)
        kern = builder.c_openmp_cpu(Precision.FP64)
        mix = instruction_mix(kern, shape)
        assert mix.issue_slots >= mix.fma_issues


class TestReferenceInfo:
    def test_c_openmp_stride_classes(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        info = {(r.array, r.kind): r for r in reference_info(k, SHAPE)}
        # row-major, inner loop j: B[k,j] and C[i,j] stream
        assert info[("B", "load")].stride_class == StrideClass.UNIT
        assert info[("C", "load")].stride_class == StrideClass.UNIT
        assert info[("C", "store")].stride_class == StrideClass.UNIT

    def test_julia_col_major_unit_strides(self):
        k = builder.julia_threads_cpu(Precision.FP64)
        info = {(r.array, r.kind): r for r in reference_info(k, SHAPE)}
        # column-major, inner loop i: A[i,k] and C[i,j] stream down columns
        assert info[("A", "load")].stride_class == StrideClass.UNIT
        assert info[("C", "store")].stride_class == StrideClass.UNIT

    def test_sharing_cpu(self):
        """B is indexed (k,j); the i-threads all stream the same B."""
        k = builder.c_openmp_cpu(Precision.FP64)
        info = {(r.array, r.kind): r for r in reference_info(k, SHAPE)}
        assert info[("B", "load")].shared_across_parallel
        assert not info[("A", "load")].shared_across_parallel
        assert not info[("C", "store")].shared_across_parallel

    def test_sharing_gpu_both_operands(self):
        """On a 2-D grid, A misses the j axis and B misses the i axis."""
        k = builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR)
        info = {(r.array, r.kind): r for r in reference_info(k, SHAPE)}
        assert info[("A", "load")].shared_across_parallel
        assert info[("B", "load")].shared_across_parallel
        assert not info[("C", "store")].shared_across_parallel

    def test_reuse_factor_b_is_m(self):
        """In order ikj, the full B is re-swept once per i iteration."""
        k = builder.c_openmp_cpu(Precision.FP64)
        info = {(r.array, r.kind): r for r in reference_info(k, SHAPE)}
        b = info[("B", "load")]
        assert b.reuse_factor == SHAPE.m
        assert b.reuse_working_set_bytes == SHAPE.k * SHAPE.n * 8

    def test_c_row_reuse_small_ws(self):
        """C[i,:] is re-touched per k with only a row-sized working set."""
        k = builder.c_openmp_cpu(Precision.FP64)
        info = {(r.array, r.kind): r for r in reference_info(k, SHAPE)}
        c = info[("C", "load")]
        assert c.reuse_factor == SHAPE.k
        assert c.reuse_working_set_bytes == SHAPE.n * 8

    def test_executions_and_footprint(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        info = {(r.array, r.kind): r for r in reference_info(k, SHAPE)}
        assert info[("A", "load")].executions == SHAPE.m * SHAPE.k  # hoisted
        assert info[("B", "load")].distinct_elements == SHAPE.k * SHAPE.n

    def test_fp16_output_bytes_are_fp32(self):
        """Mixed precision: C is stored in FP32 even for FP16 inputs."""
        k = builder.julia_threads_cpu(Precision.FP16)
        info = {(r.array, r.kind): r for r in reference_info(k, SHAPE)}
        assert info[("A", "load")].element_bytes == 2
        assert info[("C", "store")].element_bytes == 4


class TestAccumStreams:
    """Regression: accum_streams depends only on (chain, fastmath); the old
    accumulator logic had an unreachable strict-FP branch."""

    def test_fastmath_unroll_and_vectorize_multiply(self):
        k = builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR)
        k = k.replace(fastmath=True)
        k = VectorizeInnerLoop(4).run(UnrollInnerLoop(2).run(k))
        assert instruction_mix(k, SHAPE).accum_streams == 8

    def test_no_chain_kernel_scales_with_unroll_times_width(self):
        # c_openmp kernel accumulates into C[i,j] in memory: no scalar
        # reduction chain, so streams track the issue shape even strict-FP.
        k = builder.c_openmp_cpu(Precision.FP64)
        assert not k.fastmath
        k = VectorizeInnerLoop(8).run(UnrollInnerLoop(2).run(k))
        assert instruction_mix(k, SHAPE).accum_streams == 16


class TestHoistedAboveOutermost:
    """Regression: a statement hoisted above the outermost loop has no
    enclosing loops, so its stride must be 0 (INVARIANT), not the stride
    of some unrelated loop."""

    def _kernel(self):
        from repro.ir.nodes import LoadOp

        k = builder.c_openmp_cpu(Precision.FP64)
        loads = tuple(
            LoadOp(ld.ref, hoisted_above="i") if ld.ref.array == "B" else ld
            for ld in k.body.loads
        )
        return k.replace(body=k.body.with_(loads=loads))

    def test_reference_info_invariant(self):
        info = {(r.array, r.kind): r for r in reference_info(self._kernel(), SHAPE)}
        b = info[("B", "load")]
        assert b.executions == 1
        assert b.inner_stride_elems == 0
        assert b.stride_class == StrideClass.INVARIANT

    def test_instruction_mix_still_computes(self):
        mix = instruction_mix(self._kernel(), SHAPE)
        assert mix.flops == flop_count(SHAPE)
