"""Tests for repro.core.types: precisions, layouts, shapes."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.types import Layout, MatrixShape, Precision


class TestPrecision:
    def test_dtypes(self):
        assert Precision.FP64.np_dtype == np.float64
        assert Precision.FP32.np_dtype == np.float32
        assert Precision.FP16.np_dtype == np.float16

    def test_fp16_accumulates_in_fp32(self):
        """The paper's mixed-precision convention (Fig. 1c)."""
        assert Precision.FP16.accum_dtype == np.float32
        assert Precision.FP64.accum_dtype == np.float64
        assert Precision.FP32.accum_dtype == np.float32

    def test_bytes_and_bits(self):
        assert Precision.FP64.bytes == 8
        assert Precision.FP32.bytes == 4
        assert Precision.FP16.bytes == 2
        assert Precision.FP64.bits == 64

    def test_labels(self):
        assert Precision.FP64.label == "double"
        assert Precision.FP32.label == "single"
        assert Precision.FP16.label == "half"

    @pytest.mark.parametrize("text,expected", [
        ("fp64", Precision.FP64),
        ("DOUBLE", Precision.FP64),
        ("f32", Precision.FP32),
        ("single", Precision.FP32),
        ("half", Precision.FP16),
        (" 16 ", Precision.FP16),
    ])
    def test_parse(self, text, expected):
        assert Precision.parse(text) is expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Precision.parse("quad")


class TestLayout:
    def test_np_order(self):
        assert Layout.ROW_MAJOR.np_order == "C"
        assert Layout.COL_MAJOR.np_order == "F"

    def test_contiguous_axis(self):
        assert Layout.ROW_MAJOR.contiguous_axis == 1
        assert Layout.COL_MAJOR.contiguous_axis == 0


class TestMatrixShape:
    def test_square(self):
        s = MatrixShape.square(128)
        assert (s.m, s.n, s.k) == (128, 128, 128)
        assert s.is_square

    def test_flops_formula(self):
        assert MatrixShape(2, 3, 4).flops == 2 * 2 * 3 * 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MatrixShape(0, 1, 1)
        with pytest.raises(ValueError):
            MatrixShape(1, -2, 1)

    def test_rejects_non_int(self):
        with pytest.raises(ValueError):
            MatrixShape(1.5, 2, 3)

    def test_footprint_fp64(self):
        s = MatrixShape(10, 20, 30)
        expected = (10 * 30 + 30 * 20) * 8 + 10 * 20 * 8
        assert s.footprint_bytes(Precision.FP64) == expected

    def test_footprint_fp16_mixed(self):
        """FP16 inputs but FP32 output matrix."""
        s = MatrixShape(4, 4, 4)
        assert s.footprint_bytes(Precision.FP16) == (16 + 16) * 2 + 16 * 4

    @given(st.integers(1, 512), st.integers(1, 512), st.integers(1, 512))
    def test_flops_positive_and_even(self, m, n, k):
        f = MatrixShape(m, n, k).flops
        assert f > 0 and f % 2 == 0

    @given(st.integers(1, 256), st.integers(1, 256), st.integers(1, 256))
    def test_footprint_monotone_in_precision(self, m, n, k):
        s = MatrixShape(m, n, k)
        assert (s.footprint_bytes(Precision.FP16)
                < s.footprint_bytes(Precision.FP32)
                < s.footprint_bytes(Precision.FP64))
