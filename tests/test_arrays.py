"""Tests for the array substrate: layouts, RNG quirks, device arrays."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arrays import (
    DeviceContext,
    FillPolicy,
    alloc,
    fill_matrix,
    is_layout,
    linear_index,
    make_gemm_operands,
    strides_elements,
    touched_lines,
)
from repro.core.types import Layout, Precision
from repro.errors import MachineModelError
from repro.machine import A100


class TestLayoutHelpers:
    def test_strides(self):
        assert strides_elements(4, 6, Layout.ROW_MAJOR) == (6, 1)
        assert strides_elements(4, 6, Layout.COL_MAJOR) == (1, 4)

    def test_linear_index_corners(self):
        assert linear_index(0, 0, 4, 6, Layout.ROW_MAJOR) == 0
        assert linear_index(3, 5, 4, 6, Layout.ROW_MAJOR) == 23
        assert linear_index(3, 5, 4, 6, Layout.COL_MAJOR) == 23

    @given(st.integers(0, 7), st.integers(0, 5))
    def test_linear_index_bijective(self, r, c):
        seen = linear_index(r, c, 8, 6, Layout.ROW_MAJOR)
        assert 0 <= seen < 48

    def test_alloc_orders(self):
        a = alloc(4, 6, np.dtype(np.float64), Layout.COL_MAJOR)
        assert is_layout(a, Layout.COL_MAJOR)
        b = alloc(4, 6, np.dtype(np.float32), Layout.ROW_MAJOR, fill=2.0)
        assert is_layout(b, Layout.ROW_MAJOR)
        assert float(b[0, 0]) == 2.0


class TestTouchedLines:
    def test_contiguous(self):
        # 64 fp64 elements unit stride = 512 bytes = 8 lines of 64
        assert touched_lines(64, 1, 8, 64) == 8

    def test_strided_one_line_each(self):
        assert touched_lines(64, 100, 8, 64) == 64

    def test_invariant(self):
        assert touched_lines(1000, 0, 8, 64) == 1

    def test_empty(self):
        assert touched_lines(0, 1, 8) == 0

    @given(st.integers(1, 10000), st.integers(0, 512), st.integers(1, 16))
    def test_bounds(self, n, stride, log_elem):
        elem = min(2 ** (log_elem % 4), 8)
        lines = touched_lines(n, stride, elem, 64)
        assert 1 <= lines <= max(1, n)


class TestFillPolicies:
    def test_numba_fp16_falls_back_to_ones(self):
        """Sec. IV-A: no FP16 RNG -> matrices populated with 1s."""
        policy = FillPolicy(random_fp16=False, seed=7)
        m = fill_matrix(8, 8, Precision.FP16, Layout.ROW_MAJOR, policy)
        assert m.dtype == np.float16
        assert np.all(m == 1.0)

    def test_julia_fp16_is_random(self):
        policy = FillPolicy(random_fp16=True, seed=7)
        m = fill_matrix(8, 8, Precision.FP16, Layout.ROW_MAJOR, policy)
        assert not np.all(m == m.flat[0])

    def test_seeded_reproducibility(self):
        p = FillPolicy(seed=42)
        a = fill_matrix(16, 16, Precision.FP64, Layout.ROW_MAJOR, p)
        b = fill_matrix(16, 16, Precision.FP64, Layout.ROW_MAJOR, p)
        assert np.array_equal(a, b)

    def test_seed_offset_differs(self):
        p = FillPolicy(seed=42)
        a = fill_matrix(16, 16, Precision.FP64, Layout.ROW_MAJOR, p, seed_offset=1)
        b = fill_matrix(16, 16, Precision.FP64, Layout.ROW_MAJOR, p, seed_offset=2)
        assert not np.array_equal(a, b)

    def test_operands_shapes_dtypes(self):
        a, b, c = make_gemm_operands(4, 6, 5, Precision.FP16, Layout.COL_MAJOR,
                                     FillPolicy(seed=1))
        assert a.shape == (4, 5) and b.shape == (5, 6) and c.shape == (4, 6)
        assert a.dtype == np.float16 and c.dtype == np.float32
        assert np.all(c == 0)
        assert is_layout(a, Layout.COL_MAJOR)

    def test_all_ones_analytic_product(self):
        """Ones inputs make C == K exactly — the check the paper's FP16
        Numba path permits."""
        a, b, c = make_gemm_operands(3, 3, 7, Precision.FP16, Layout.ROW_MAJOR,
                                     FillPolicy(random_fp16=False))
        c += (a.astype(np.float32) @ b.astype(np.float32))
        assert np.all(c == 7.0)


class TestDeviceArrays:
    def test_h2d_roundtrip_preserves_data(self):
        ctx = DeviceContext(A100)
        host = np.arange(12, dtype=np.float64).reshape(3, 4)
        dev = ctx.to_device(host)
        back = dev.to_host()
        assert np.array_equal(back, host)
        assert back is not host

    def test_transfer_accounting(self):
        ctx = DeviceContext(A100)
        host = np.zeros((128, 128))
        dev = ctx.to_device(host)
        dev.to_host()
        assert ctx.h2d_bytes == host.nbytes
        assert ctx.d2h_bytes == host.nbytes
        assert ctx.total_transfer_seconds > 0

    def test_transfer_time_scales_with_bytes(self):
        ctx = DeviceContext(A100)
        small = ctx.to_device(np.zeros(1024))
        big = ctx.to_device(np.zeros(1024 * 1024))
        t_small, t_big = (t.seconds for t in ctx.transfers)
        assert t_big > t_small

    def test_alloc_and_free(self):
        ctx = DeviceContext(A100)
        arr = ctx.alloc((64, 64), np.float32)
        assert ctx.allocated_bytes == 64 * 64 * 4
        ctx.free(arr)
        assert ctx.allocated_bytes == 0
        assert ctx.peak_allocated_bytes == 64 * 64 * 4

    def test_double_free_rejected(self):
        ctx = DeviceContext(A100)
        arr = ctx.alloc((2, 2), np.float64)
        ctx.free(arr)
        with pytest.raises(MachineModelError):
            ctx.free(arr)

    def test_use_after_free_rejected(self):
        ctx = DeviceContext(A100)
        arr = ctx.alloc((2, 2), np.float64)
        ctx.free(arr)
        with pytest.raises(MachineModelError):
            arr.to_host()
