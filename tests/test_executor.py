"""Tests for the CPU execution simulator (the GPU one is in test_gpu.py)."""

import pytest

from repro.core.types import MatrixShape, Precision
from repro.ir import builder
from repro.ir.passes import UnrollInnerLoop, VectorizeInnerLoop
from repro.machine import AMPERE_ALTRA, EPYC_7A53
from repro.sched.affinity import PinPolicy
from repro.sim.executor import CPUIssueProfile, cpu_cycles_total, simulate_cpu_kernel


def vec_kernel(cpu, precision=Precision.FP64):
    k = builder.c_openmp_cpu(precision)
    k = VectorizeInnerLoop(cpu.simd_lanes(precision)).run(k)
    return UnrollInnerLoop(4).run(k)


SH = MatrixShape.square(2048)


class TestCyclesModel:
    def test_vectorization_speeds_up(self):
        plain = cpu_cycles_total(builder.c_openmp_cpu(Precision.FP64), SH,
                                 EPYC_7A53)
        vec = cpu_cycles_total(vec_kernel(EPYC_7A53), SH, EPYC_7A53)
        assert vec < plain / 2

    def test_issue_multiplier_linear(self):
        base = cpu_cycles_total(vec_kernel(EPYC_7A53), SH, EPYC_7A53)
        doubled = cpu_cycles_total(vec_kernel(EPYC_7A53), SH, EPYC_7A53,
                                   CPUIssueProfile(issue_multiplier=2.0))
        assert doubled == pytest.approx(2 * base)

    def test_extra_int_ops_slow_down(self):
        base = cpu_cycles_total(vec_kernel(EPYC_7A53), SH, EPYC_7A53)
        noisy = cpu_cycles_total(
            vec_kernel(EPYC_7A53), SH, EPYC_7A53,
            CPUIssueProfile(extra_int_per_inner_iter=50.0))
        assert noisy > base

    def test_reduction_chain_dominates_strict_scalar_accum(self):
        """A strict-FP per-element kernel is latency-chained."""
        k = builder.kokkos_cpu(Precision.FP64)  # scalar accum, no fastmath
        chained = cpu_cycles_total(k, SH, EPYC_7A53)
        fast = cpu_cycles_total(
            UnrollInnerLoop(8).run(k.replace(fastmath=True)), SH, EPYC_7A53)
        assert chained > 2 * fast


class TestSimulateCPU:
    def test_thread_scaling(self):
        t8 = simulate_cpu_kernel(vec_kernel(EPYC_7A53), EPYC_7A53, SH, 8)
        t64 = simulate_cpu_kernel(vec_kernel(EPYC_7A53), EPYC_7A53, SH, 64)
        speedup = t8.total_seconds / t64.total_seconds
        assert 5.0 < speedup <= 8.2

    def test_fp32_roughly_doubles(self):
        t64f = simulate_cpu_kernel(vec_kernel(EPYC_7A53, Precision.FP32),
                                   EPYC_7A53, SH, 64)
        t64d = simulate_cpu_kernel(vec_kernel(EPYC_7A53), EPYC_7A53, SH, 64)
        assert 1.7 < t64d.total_seconds / t64f.total_seconds < 2.2

    def test_gflops_below_peak(self):
        t = simulate_cpu_kernel(vec_kernel(EPYC_7A53), EPYC_7A53, SH, 64)
        assert 0 < t.gflops(SH) < EPYC_7A53.peak_gflops(Precision.FP64)

    def test_pinning_matters_only_on_numa(self):
        """The E9 ablation in miniature."""
        pinned = simulate_cpu_kernel(vec_kernel(EPYC_7A53), EPYC_7A53, SH, 64,
                                     pin=PinPolicy.COMPACT)
        unpinned = simulate_cpu_kernel(vec_kernel(EPYC_7A53), EPYC_7A53, SH, 64,
                                       pin=PinPolicy.NONE)
        assert unpinned.total_seconds > 1.2 * pinned.total_seconds

        pinned_arm = simulate_cpu_kernel(vec_kernel(AMPERE_ALTRA),
                                         AMPERE_ALTRA, SH, 80,
                                         pin=PinPolicy.COMPACT)
        unpinned_arm = simulate_cpu_kernel(vec_kernel(AMPERE_ALTRA),
                                           AMPERE_ALTRA, SH, 80,
                                           pin=PinPolicy.NONE)
        assert unpinned_arm.total_seconds == pytest.approx(
            pinned_arm.total_seconds, rel=0.02)

    def test_imbalance_visible_for_odd_sizes(self):
        odd = MatrixShape.square(65)  # 65 rows on 64 threads
        t = simulate_cpu_kernel(vec_kernel(EPYC_7A53), EPYC_7A53, odd, 64)
        assert t.imbalance > 1.5

    def test_requires_worksharing_loop(self):
        from repro.core.types import Layout
        gpu_k = builder.gpu_thread_per_element("g", Precision.FP64,
                                               Layout.ROW_MAJOR)
        with pytest.raises(ValueError):
            simulate_cpu_kernel(gpu_k, EPYC_7A53, SH, 4)

    def test_per_call_overhead_added(self):
        base = simulate_cpu_kernel(vec_kernel(EPYC_7A53), EPYC_7A53, SH, 64)
        slow = simulate_cpu_kernel(
            vec_kernel(EPYC_7A53), EPYC_7A53, SH, 64,
            profile=CPUIssueProfile(per_call_overhead_s=1.0))
        assert slow.total_seconds == pytest.approx(base.total_seconds + 1.0)
