"""Cross-cutting property-based tests over the simulation stack.

Invariants that must hold for *any* configuration, checked with
hypothesis: work conservation, monotonicity in resources, determinism,
and agreement between analysis layers.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.types import Layout, MatrixShape, Precision
from repro.gpu import paper_launch, simulate_gpu_kernel
from repro.ir import builder
from repro.ir.analysis import instruction_mix, reference_info
from repro.ir.passes import InterchangeLoops, UnrollInnerLoop, VectorizeInnerLoop
from repro.machine import A100, AMPERE_ALTRA, EPYC_7A53, MI250X
from repro.sched.affinity import PinPolicy
from repro.sim.executor import cpu_cycles_total, simulate_cpu_kernel

shapes = st.builds(
    MatrixShape,
    st.integers(16, 512), st.integers(16, 512), st.integers(16, 512))

precisions = st.sampled_from([Precision.FP64, Precision.FP32, Precision.FP16])


class TestMixInvariants:
    @given(shapes, precisions)
    @settings(max_examples=40, deadline=None)
    def test_flops_invariant_under_lowering(self, shape, precision):
        """No pass changes the arithmetic work."""
        k = builder.c_openmp_cpu(precision)
        base = instruction_mix(k, shape).flops
        for transform in (VectorizeInnerLoop(4), UnrollInnerLoop(8)):
            k = transform.run(k)
        assert instruction_mix(k, shape).flops == base == shape.flops

    @given(shapes)
    @settings(max_examples=30, deadline=None)
    def test_interchange_preserves_totals(self, shape):
        """Loop interchange preserves the number of element accesses of
        every reference (only their placement changes)."""
        k = builder.c_openmp_cpu(Precision.FP64)
        swapped = InterchangeLoops("ijk").run(k)

        def access_totals(kern):
            return sorted(
                (r.array, r.kind, r.distinct_elements)
                for r in reference_info(kern, shape))

        # footprints (distinct elements) must be identical; execution
        # counts may legitimately change with hoisting opportunities
        assert access_totals(k) == access_totals(swapped)

    @given(shapes, st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_vector_width_never_increases_issues(self, shape, w):
        k = builder.c_openmp_cpu(Precision.FP64)
        kv = VectorizeInnerLoop(w).run(k)
        base = instruction_mix(k, shape)
        vec = instruction_mix(kv, shape)
        assert vec.fma_issues <= base.fma_issues
        assert vec.issue_slots <= base.issue_slots


class TestCPUSimInvariants:
    def _kernel(self, cpu, precision=Precision.FP64):
        k = builder.c_openmp_cpu(precision)
        k = VectorizeInnerLoop(cpu.simd_lanes(precision)).run(k)
        return UnrollInnerLoop(4).run(k)

    @given(st.sampled_from([512, 1024, 2048]), st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_more_threads_never_slower(self, n, threads):
        """For a compute-bound kernel at non-trivial sizes, adding threads
        (up to the core count) never increases simulated time.  (At tiny
        sizes this is genuinely false — the barrier cost of extra threads
        outgrows the compute savings — which test_small_problem_scaling
        in the scaling bench pins from the other side.)"""
        cpu = EPYC_7A53
        k = self._kernel(cpu)
        shape = MatrixShape.square(n)
        t1 = simulate_cpu_kernel(k, cpu, shape, threads).total_seconds
        t2 = simulate_cpu_kernel(k, cpu, shape, min(64, threads * 2)).total_seconds
        assert t2 <= t1 * 1.01

    @given(st.sampled_from([EPYC_7A53, AMPERE_ALTRA]), precisions)
    @settings(max_examples=12, deadline=None)
    def test_gflops_bounded_by_peak(self, cpu, precision):
        k = self._kernel(cpu, precision)
        shape = MatrixShape.square(512)
        t = simulate_cpu_kernel(k, cpu, shape, cpu.cores)
        assert 0 < t.gflops(shape) <= cpu.peak_gflops(precision)

    @given(st.integers(64, 2048))
    @settings(max_examples=20, deadline=None)
    def test_time_scales_superlinearly_with_n(self, n):
        """Doubling n multiplies work by 8: time must grow by at least the
        compute factor (minus constant overheads)."""
        cpu = EPYC_7A53
        k = self._kernel(cpu)
        t1 = simulate_cpu_kernel(k, cpu, MatrixShape.square(n), 64)
        t2 = simulate_cpu_kernel(k, cpu, MatrixShape.square(2 * n), 64)
        assert t2.total_seconds > 4 * (t1.total_seconds
                                       - t1.fork_join_seconds)

    @given(st.floats(1.0, 10.0))
    @settings(max_examples=15, deadline=None)
    def test_cycles_monotone_in_quality_factor(self, mult):
        from repro.sim.executor import CPUIssueProfile
        cpu = EPYC_7A53
        k = self._kernel(cpu)
        shape = MatrixShape.square(256)
        base = cpu_cycles_total(k, shape, cpu)
        scaled = cpu_cycles_total(k, shape, cpu,
                                  CPUIssueProfile(issue_multiplier=mult))
        assert scaled == pytest.approx(base * mult)

    def test_determinism(self):
        cpu = EPYC_7A53
        k = self._kernel(cpu)
        shape = MatrixShape.square(512)
        a = simulate_cpu_kernel(k, cpu, shape, 64)
        b = simulate_cpu_kernel(k, cpu, shape, 64)
        assert a == b


class TestGPUSimInvariants:
    def _kernel(self, precision=Precision.FP64):
        k = builder.gpu_thread_per_element("g", precision, Layout.ROW_MAJOR)
        return UnrollInnerLoop(4).run(k)

    @given(st.sampled_from([A100, MI250X]), precisions,
           st.sampled_from([256, 1024, 4096]))
    @settings(max_examples=20, deadline=None)
    def test_gflops_bounded_by_peak(self, gpu, precision, n):
        shape = MatrixShape.square(n)
        t = simulate_gpu_kernel(self._kernel(precision), paper_launch("j"),
                                gpu, shape)
        assert 0 < t.gflops(shape) < gpu.peak_gflops(precision)

    @given(st.integers(128, 4096))
    @settings(max_examples=20, deadline=None)
    def test_time_monotone_in_size(self, n):
        t1 = simulate_gpu_kernel(self._kernel(), paper_launch("j"), A100,
                                 MatrixShape.square(n))
        t2 = simulate_gpu_kernel(self._kernel(), paper_launch("j"), A100,
                                 MatrixShape.square(n + 128))
        assert t2.total_seconds >= t1.total_seconds * 0.999

    @given(st.floats(1.0, 20.0))
    @settings(max_examples=15, deadline=None)
    def test_issue_multiplier_never_speeds_up(self, mult):
        from repro.gpu import IssueProfile
        shape = MatrixShape.square(2048)
        base = simulate_gpu_kernel(self._kernel(), paper_launch("j"), A100,
                                   shape)
        slow = simulate_gpu_kernel(self._kernel(), paper_launch("j"), A100,
                                   shape, IssueProfile(issue_multiplier=mult))
        assert slow.total_seconds >= base.total_seconds * 0.999

    @given(st.sampled_from([(8, 8), (16, 16), (32, 32), (32, 8)]))
    @settings(max_examples=8, deadline=None)
    def test_any_block_shape_valid(self, block):
        from repro.gpu import LaunchConfig
        bx, by = block
        shape = MatrixShape.square(1024)
        t = simulate_gpu_kernel(self._kernel(), LaunchConfig(bx, by, "j"),
                                A100, shape)
        assert t.total_seconds > 0
        assert 0 < t.occupancy_fraction <= 1.0
