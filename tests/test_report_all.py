"""Tests for the full-report generator and config-pitfall integration."""

import pytest

from repro.config import RunConfig
from repro.core.types import MatrixShape, Precision
from repro.harness import full_report
from repro.machine import EPYC_7A53
from repro.models import model_by_name
from repro.sched.affinity import PinPolicy
from repro.sim.executor import simulate_cpu_kernel

SIZES = (1024, 4096)


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return full_report(SIZES)

    def test_contains_every_artifact(self, report):
        for marker in ("Table I —", "Table II —", "Fig. 4", "Fig. 5",
                       "Fig. 6", "Fig. 7", "Table III —", "Verification",
                       "Productivity"):
            assert marker in report, marker

    def test_verdict_present(self, report):
        assert "verdict: REPRODUCED" in report

    def test_markdown_code_fences_balanced(self, report):
        assert report.count("```") % 2 == 0

    def test_sizes_recorded(self, report):
        assert "1024, 4096" in report

    def test_charts_optional(self):
        with_charts = full_report(SIZES, charts=True)
        assert "GFLOP/s vs matrix size" in with_charts


class TestConfigPitfalls:
    """Integration of the RunConfig hygiene with actual lowerings: the
    classic silent failure where a typo'd pinning variable costs 30%."""

    def test_typo_detected(self):
        cfg = RunConfig({"OMP_PROC_BND": "true", "OMP_NUM_THREADS": "64"})
        warnings = cfg.validate()
        assert any("OMP_PROC_BIND" in w for w in warnings)

    def test_typo_silently_unpins(self):
        """The typo'd variable parses as 'no pinning requested'..."""
        cfg = RunConfig({"OMP_PROC_BND": "true", "OMP_NUM_THREADS": "64"})
        low = model_by_name("c-openmp").lower_cpu(EPYC_7A53, Precision.FP64,
                                                  cfg)
        assert low.pin is PinPolicy.NONE

    def test_typo_costs_migration_tax(self):
        """...and the run pays the full unpinned penalty on the 4-NUMA
        EPYC — the failure mode the validate() warning exists to catch."""
        model = model_by_name("c-openmp")
        shape = MatrixShape.square(2048)
        good = model.lower_cpu(EPYC_7A53, Precision.FP64,
                               RunConfig.openmp(64))
        bad = model.lower_cpu(EPYC_7A53, Precision.FP64,
                              RunConfig({"OMP_PROC_BND": "true",
                                         "OMP_NUM_THREADS": "64"}))
        t_good = simulate_cpu_kernel(good.kernel, EPYC_7A53, shape, 64,
                                     pin=good.pin, profile=good.profile)
        t_bad = simulate_cpu_kernel(bad.kernel, EPYC_7A53, shape, 64,
                                    pin=bad.pin, profile=bad.profile)
        assert t_bad.total_seconds > 1.2 * t_good.total_seconds
