"""Crash-safe campaigns: write-ahead journal, resume, shutdown, fsck."""

import json
import os
import signal
import threading

import pytest

from repro.core.types import DeviceKind, Precision
from repro.errors import JournalError, RunInterrupted
from repro.harness.engine import ResultCache, RunOptions, SweepEngine
from repro.harness.experiment import Experiment
from repro.harness.export import (
    result_set_to_json,
    write_result_set_artifact,
)
from repro.harness.journal import (
    EXIT_FSCK_CORRUPT,
    EXIT_INTERRUPTED,
    RunJournal,
    RunRegistry,
    fsck_store,
    graceful_shutdown,
    load_journal,
    restore_campaign,
    resume_run,
)
from repro.harness.runner import run_experiment
from repro.ioutil import (
    atomic_write_text,
    content_digest,
    read_json_artifact,
    write_json_artifact,
)


def small_exp(**kw):
    defaults = dict(
        exp_id="jr-cpu", title="journal test", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=("julia", "numba"), sizes=(256, 512), threads=64, reps=5,
    )
    defaults.update(kw)
    return Experiment(**defaults)


@pytest.fixture
def registry(tmp_path):
    return RunRegistry(str(tmp_path / "runs"))


def serial_engine(cache=None):
    return SweepEngine(cache=cache, parallel=False)


def interrupt_on_call(n):
    """Make the n-th simulated cell raise KeyboardInterrupt.

    Returns a private MonkeyPatch; callers undo it before resuming (the
    shared ``monkeypatch`` fixture must not be used — undoing it would
    also drop the suite's REPRO_RUNS_DIR/REPRO_CACHE_DIR isolation).
    """
    import repro.harness.engine.worker as worker
    orig = worker.run_measurement
    calls = {"count": 0}

    def boom(*args, **kwargs):
        calls["count"] += 1
        if calls["count"] == n:
            raise KeyboardInterrupt
        return orig(*args, **kwargs)

    mp = pytest.MonkeyPatch()
    mp.setattr(worker, "run_measurement", boom)
    return mp


class TestIoutil:
    def test_atomic_write_replaces(self, tmp_path):
        path = str(tmp_path / "f.txt")
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        with open(path) as fh:
            assert fh.read() == "two"
        assert os.listdir(str(tmp_path)) == ["f.txt"]

    def test_artifact_roundtrip(self, tmp_path):
        path = str(tmp_path / "a.json")
        digest = write_json_artifact(path, {"x": [1, 2], "y": "z"})
        doc = read_json_artifact(path)
        assert doc["x"] == [1, 2] and doc["digest"] == digest

    def test_artifact_tamper_detected(self, tmp_path):
        path = str(tmp_path / "a.json")
        write_json_artifact(path, {"x": 1})
        doc = json.load(open(path))
        doc["x"] = 2
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.raises(ValueError, match="digest"):
            read_json_artifact(path)

    def test_artifact_without_digest_rejected(self, tmp_path):
        path = str(tmp_path / "a.json")
        with open(path, "w") as fh:
            json.dump({"x": 1}, fh)
        with pytest.raises(ValueError, match="digest"):
            read_json_artifact(path)


class TestJournalFile:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "run-1.jsonl")
        j = RunJournal.create(path, "run-1")
        j.open_run(manifest={"exp_id": "x", "precision": "fp64"},
                   campaign="c" * 64, options={}, cells=[{"index": 0}])
        j.close_run("complete", completed=0, total=1)
        state = load_journal(path)
        assert state.run_id == "run-1"
        assert state.status == "complete"
        assert state.total_cells == 1 and state.done_cells == 0
        assert not state.resumable

    def test_create_refuses_existing(self, tmp_path):
        path = str(tmp_path / "run-1.jsonl")
        RunJournal.create(path, "run-1").append("run-open", run_id="run-1")
        with pytest.raises(JournalError, match="already exists"):
            RunJournal.create(path, "run-1")

    def test_torn_tail_dropped(self, tmp_path):
        path = str(tmp_path / "run-1.jsonl")
        j = RunJournal.create(path, "run-1")
        j.open_run(manifest={"exp_id": "x"}, campaign="", options={},
                   cells=[])
        j.close()
        with open(path, "a") as fh:
            fh.write('{"seq": 2, "type": "cell-done", "data"')
        state = load_journal(path)
        assert state.records == 1 and state.dropped == 1
        assert state.status == "open"

    def test_checksum_corruption_truncates_from_flip(self, tmp_path):
        path = str(tmp_path / "run-1.jsonl")
        j = RunJournal.create(path, "run-1")
        j.open_run(manifest={"exp_id": "x"}, campaign="", options={},
                   cells=[])
        j.append("cell-start", index=0, model="julia", shape="256",
                 fingerprint="f0")
        j.append("cell-start", index=1, model="numba", shape="256",
                 fingerprint="f1")
        j.close()
        lines = open(path).read().splitlines()
        lines[1] = lines[1].replace('"julia"', '"jUlia"')
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        state = load_journal(path)
        assert state.records == 1 and state.dropped == 2

    def test_no_run_open_is_an_error(self, tmp_path):
        path = str(tmp_path / "run-1.jsonl")
        with open(path, "w") as fh:
            fh.write("not json\n")
        with pytest.raises(JournalError, match="run-open"):
            load_journal(path)

    def test_reopen_truncates_and_continues_sequence(self, tmp_path):
        path = str(tmp_path / "run-1.jsonl")
        j = RunJournal.create(path, "run-1")
        j.open_run(manifest={"exp_id": "x"}, campaign="", options={},
                   cells=[])
        j.close()
        with open(path, "a") as fh:
            fh.write("torn garba")
        j2 = RunJournal.reopen(path)
        j2.resume_run(completed=0, total=0)
        j2.close()
        state = load_journal(path)
        assert state.dropped == 0 and state.records == 2
        assert state.resumes == 1

    def test_close_status_validated(self, tmp_path):
        j = RunJournal.create(str(tmp_path / "r.jsonl"), "r")
        with pytest.raises(JournalError, match="status"):
            j.close_run("finished", completed=0, total=0)

    def test_appends_after_close_are_noops(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        j = RunJournal.create(path, "r")
        j.open_run(manifest={}, campaign="", options={}, cells=[])
        j.close_run("complete", completed=0, total=0)
        j.append("cell-start", index=0, model="m", shape="s",
                 fingerprint="f")
        assert len(open(path).read().splitlines()) == 2


class TestRegistry:
    def test_malformed_run_ids_rejected(self, registry):
        for bad in ("", "../x", ".hidden"):
            with pytest.raises(JournalError):
                registry.path_for(bad)

    def test_create_load_list(self, registry):
        j = registry.create()
        j.open_run(manifest={"exp_id": "x"}, campaign="", options={},
                   cells=[])
        j.close()
        assert registry.run_ids() == [j.run_id]
        assert registry.load(j.run_id).run_id == j.run_id
        assert j.run_id in registry.render_list()

    def test_unknown_run_id(self, registry):
        with pytest.raises(JournalError, match="no run"):
            registry.load("run-nope")

    def test_list_flags_unreadable_journal(self, registry):
        good = registry.create()
        good.open_run(manifest={"exp_id": "x"}, campaign="", options={},
                      cells=[])
        good.close()
        bad = registry.create()
        bad.open_run(manifest={"exp_id": "y"}, campaign="", options={},
                     cells=[])
        bad.close()
        atomic_write_text(registry.path_for(bad.run_id), "not a journal\n")
        # runs() skips the unreadable entry instead of raising
        assert [s.run_id for s in registry.runs()] == [good.run_id]
        # ...but the listing flags it rather than silently dropping it
        listing = registry.render_list()
        assert good.run_id in listing
        assert f"{bad.run_id}  UNREADABLE" in listing
        assert "repro fsck" in listing

    def test_list_flags_vanished_journal(self, registry, monkeypatch):
        j = registry.create()
        j.open_run(manifest={"exp_id": "x"}, campaign="", options={},
                   cells=[])
        j.close()
        # A journal can vanish between the listing and the load (e.g.
        # quarantined by a concurrent fsck).
        monkeypatch.setattr(registry, "run_ids",
                            lambda: [j.run_id, "run-ghost"])
        assert [s.run_id for s in registry.runs()] == [j.run_id]
        listing = registry.render_list()
        assert "run-ghost  MISSING" in listing


class TestJournaledSweep:
    def test_complete_run_is_journaled(self, registry):
        exp = small_exp()
        journal = registry.create()
        report_engine = serial_engine()
        rs = run_experiment(exp, engine=report_engine,
                            options=RunOptions(journal=journal))
        journal.close()
        state = registry.load(journal.run_id)
        assert state.status == "complete"
        assert state.done_cells == state.total_cells == 4
        assert rs.experiment.to_dict() == state.manifest
        report = report_engine.last_report
        assert report.run_id == journal.run_id
        assert "(journaled)" in report.render()

    def test_interrupt_finalizes_journal(self, registry):
        mp = interrupt_on_call(3)
        journal = registry.create()
        try:
            with pytest.raises(RunInterrupted) as err:
                run_experiment(small_exp(), engine=serial_engine(),
                               options=RunOptions(journal=journal))
        finally:
            mp.undo()
        journal.close()
        assert err.value.run_id == journal.run_id
        assert err.value.completed == 2 and err.value.total == 4
        state = registry.load(journal.run_id)
        assert state.status == "interrupted"
        assert state.done_cells == 2 and state.resumable

    def test_resume_is_byte_identical(self, registry):
        exp = small_exp()
        baseline = result_set_to_json(
            run_experiment(exp, engine=serial_engine()))
        mp = interrupt_on_call(3)
        journal = registry.create()
        try:
            with pytest.raises(RunInterrupted):
                run_experiment(exp, engine=serial_engine(),
                               options=RunOptions(journal=journal))
        finally:
            mp.undo()
        journal.close()
        engine = serial_engine()
        resumed = resume_run(journal.run_id, registry=registry,
                             engine=engine)
        assert result_set_to_json(resumed) == baseline
        report = engine.last_report
        assert report.replayed_cells == 2 and report.executed_cells == 2
        assert "replayed" in report.render()
        state = registry.load(journal.run_id)
        assert state.status == "complete" and state.resumes == 1

    def test_resume_byte_identical_under_faults_and_retries(self, registry):
        from repro.harness.engine import RetryPolicy
        from repro.sim.faults import FaultConfig
        opts = RunOptions(faults=FaultConfig.parse("rate=0.3,seed=7"),
                          retry=RetryPolicy(max_attempts=3))
        exp = small_exp()
        baseline = result_set_to_json(
            run_experiment(exp, engine=serial_engine(), options=opts))
        mp = interrupt_on_call(3)
        journal = registry.create()
        from dataclasses import replace
        try:
            with pytest.raises(RunInterrupted):
                run_experiment(exp, engine=serial_engine(),
                               options=replace(opts, journal=journal))
        finally:
            mp.undo()
        journal.close()
        # resume restores the fault model from the journal, not from us
        resumed = resume_run(journal.run_id, registry=registry,
                             engine=serial_engine())
        assert result_set_to_json(resumed) == baseline

    def test_resume_of_complete_run_is_idempotent(self, registry):
        exp = small_exp()
        journal = registry.create()
        rs = run_experiment(exp, engine=serial_engine(),
                            options=RunOptions(journal=journal))
        journal.close()
        replayed = resume_run(journal.run_id, registry=registry,
                              engine=serial_engine())
        assert result_set_to_json(replayed) == result_set_to_json(rs)

    def test_resume_refuses_fingerprint_mismatch(self, registry):
        journal = registry.create()
        run_experiment(small_exp(), engine=serial_engine(),
                       options=RunOptions(journal=journal))
        journal.close()
        state = registry.load(journal.run_id)
        state.campaign = "0" * 64
        with pytest.raises(JournalError, match="fingerprint"):
            restore_campaign(state)

    def test_journal_survives_parallel_execution(self, registry):
        journal = registry.create()
        engine = SweepEngine(cache=None, parallel=True, max_workers=4)
        run_experiment(small_exp(), engine=engine,
                       options=RunOptions(journal=journal))
        journal.close()
        state = registry.load(journal.run_id)
        assert state.status == "complete" and state.done_cells == 4

    def test_failed_cells_are_journaled_and_replayed(self, registry):
        from repro.sim.faults import FaultConfig
        exp = small_exp()
        opts = RunOptions(faults=FaultConfig.parse("always=julia@512"))
        journal = registry.create()
        from dataclasses import replace
        rs = run_experiment(exp, engine=serial_engine(),
                            options=replace(opts, journal=journal))
        journal.close()
        assert rs.degraded
        state = registry.load(journal.run_id)
        assert state.done_cells == 4  # failed cells are still journaled
        replayed = resume_run(journal.run_id, registry=registry,
                              engine=serial_engine())
        assert result_set_to_json(replayed) == result_set_to_json(rs)

    def breaker_opts(self, **kw):
        from repro.harness.health import BreakerPolicy
        from repro.sim.faults import FaultConfig
        kw.setdefault("breaker", BreakerPolicy(threshold=2, cooldown_s=1e5))
        kw.setdefault("faults",
                      FaultConfig.parse("always=numba@256+numba@512"))
        return RunOptions(**kw)

    def gpu_exp(self):
        return Experiment(
            exp_id="jr-gpu", title="journal health test",
            node_name="Wombat", device=DeviceKind.GPU,
            precision=Precision.FP64, models=("cuda", "numba"),
            sizes=(256, 512, 1024), reps=5)

    def test_breaker_run_journals_health_metadata(self, registry):
        exp = self.gpu_exp()
        journal = registry.create()
        from dataclasses import replace
        rs = run_experiment(exp, engine=serial_engine(),
                            options=replace(self.breaker_opts(),
                                            journal=journal))
        journal.close()
        assert rs.substituted
        state = registry.load(journal.run_id)
        assert state.status == "complete" and state.done_cells == 6
        # every journaled cell carries its health metadata...
        assert len(state.outcomes) == 6
        assert all("native" in meta and "serve_cost_s" in meta
                   for meta in state.outcomes.values())
        # ...and the lane-open transition was journaled
        assert any(ev["to"] == "open" and ev["lane"] == "numba@gpu"
                   for ev in state.breaker_events)
        assert "breaker" in state.options and "fallback" not in state.options

    def test_resume_byte_identical_under_breakers(self, registry):
        exp = self.gpu_exp()
        opts = self.breaker_opts()
        baseline = result_set_to_json(
            run_experiment(exp, engine=serial_engine(), options=opts))
        mp = interrupt_on_call(4)
        journal = registry.create()
        from dataclasses import replace
        try:
            with pytest.raises(RunInterrupted):
                run_experiment(exp, engine=serial_engine(),
                               options=replace(opts, journal=journal))
        finally:
            mp.undo()
        journal.close()
        # resume restores breaker + ladder from the journal, replays the
        # completed cells' health metadata through the state machines,
        # and re-executes the rest — byte-identically
        resumed = resume_run(journal.run_id, registry=registry,
                             engine=serial_engine())
        assert result_set_to_json(resumed) == baseline
        state = registry.load(journal.run_id)
        assert state.status == "complete" and state.resumes == 1
        assert any(ev["to"] == "open" for ev in state.breaker_events)

    def test_resume_with_explicit_ladder_round_trips(self, registry):
        from repro.harness.health import FallbackLadder
        from dataclasses import replace
        exp = self.gpu_exp()
        opts = self.breaker_opts(
            fallback=FallbackLadder.parse("numba@gpu=reference"))
        journal = registry.create()
        rs = run_experiment(exp, engine=serial_engine(),
                            options=replace(opts, journal=journal))
        journal.close()
        state = registry.load(journal.run_id)
        assert "fallback" in state.options
        _, ropts = restore_campaign(state)
        assert ropts.fallback == opts.fallback
        assert ropts.breaker == opts.breaker
        replayed = resume_run(journal.run_id, registry=registry,
                              engine=serial_engine())
        assert result_set_to_json(replayed) == result_set_to_json(rs)


def process_engine(cache=None):
    import multiprocessing
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    return SweepEngine(cache=cache, parallel=True, max_workers=2,
                       mode="process")


def journal_record_stream(registry, run_id):
    """The journal as (type, data) pairs with wall clocks stripped.

    The process-pool engine must produce the same record *stream* as the
    serial loop — same types, same order, same embedded measurements —
    differing only in host timestamps and run identity.
    """
    volatile = ("created", "closed", "wall_s", "run_id", "resumed")
    stream = []
    with open(registry.path_for(run_id)) as fh:
        for line in fh:
            record = json.loads(line)
            data = {k: v for k, v in record["data"].items()
                    if k not in volatile}
            stream.append((record["type"], data))
    return stream


class TestProcessEngineJournal:
    """The parent stays the journal's single writer under ``--engine
    process``: the WAL must be record-for-record identical to a serial
    run's (timestamps aside), and a serially-interrupted run must resume
    byte-identically on the process engine."""

    def test_journal_stream_identical_to_serial(self, registry):
        exp = small_exp()
        serial_j = registry.create()
        run_experiment(exp, engine=serial_engine(),
                       options=RunOptions(journal=serial_j))
        serial_j.close()
        proc_j = registry.create()
        run_experiment(exp, engine=process_engine(),
                       options=RunOptions(journal=proc_j))
        proc_j.close()
        assert (journal_record_stream(registry, proc_j.run_id)
                == journal_record_stream(registry, serial_j.run_id))

    def test_resume_on_process_engine_is_byte_identical(self, registry):
        exp = small_exp()
        baseline = result_set_to_json(
            run_experiment(exp, engine=serial_engine()))
        mp = interrupt_on_call(3)
        journal = registry.create()
        try:
            with pytest.raises(RunInterrupted):
                run_experiment(exp, engine=serial_engine(),
                               options=RunOptions(journal=journal))
        finally:
            mp.undo()
        journal.close()
        engine = process_engine()
        resumed = resume_run(journal.run_id, registry=registry,
                             engine=engine)
        assert result_set_to_json(resumed) == baseline
        report = engine.last_report
        assert report.replayed_cells == 2 and report.executed_cells == 2
        state = registry.load(journal.run_id)
        assert state.status == "complete" and state.resumes == 1


class TestGracefulShutdown:
    def test_sigterm_becomes_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with graceful_shutdown():
                os.kill(os.getpid(), signal.SIGTERM)
                signal.sigtimedwait([signal.SIGTERM], 1)

    def test_handlers_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with graceful_shutdown():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_noop_off_main_thread(self):
        outcome = {}

        def body():
            with graceful_shutdown():
                outcome["ok"] = True

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert outcome["ok"]


class TestCacheSelfHealing:
    @pytest.fixture
    def cache(self, tmp_path):
        return ResultCache(str(tmp_path / "cache"))

    def seeded(self, cache):
        exp = small_exp(models=("julia",), sizes=(256,))
        run_experiment(exp, engine=SweepEngine(cache=cache, parallel=False))
        (path,) = list(cache._entry_paths())
        from repro.harness.engine import cell_fingerprint
        return exp, path, cell_fingerprint(exp, "julia", exp.shapes()[0])

    def test_semantic_corruption_evicts_not_raises(self, cache):
        _, path, fp = self.seeded(cache)
        entry = json.load(open(path))
        entry["measurement"]["shape"] = {"m": "wide"}
        entry["digest"] = content_digest(entry["measurement"])
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert cache.get(fp) is None
        assert cache.stats.snapshot()["evictions"] == 1
        assert not os.path.exists(path)

    def test_digest_mismatch_evicts(self, cache):
        _, path, fp = self.seeded(cache)
        entry = json.load(open(path))
        entry["measurement"]["times_s"][0] += 1.0  # silent bit-flip
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert cache.get(fp) is None
        assert cache.stats.snapshot()["evictions"] == 1

    def test_orphan_tmp_reported_and_cleared(self, cache):
        _, path, _ = self.seeded(cache)
        shard = os.path.dirname(path)
        orphan = os.path.join(shard, "orphan.tmp")
        with open(orphan, "w") as fh:
            fh.write("junk")
        old = os.stat(orphan).st_mtime - 3600  # past the grace window
        os.utime(orphan, (old, old))
        stats = cache.disk_stats()
        assert stats["entries"] == 1 and stats["tmp_orphans"] == 1
        assert "tmp orphans: 1" in cache.render_stats()
        assert cache.clear() == 1
        assert cache.disk_stats() == {"entries": 0, "bytes": 0,
                                      "tmp_orphans": 0}


class TestFsck:
    @pytest.fixture
    def store(self, tmp_path, registry):
        cache = ResultCache(str(tmp_path / "cache"))
        journal = registry.create()
        rs = run_experiment(
            small_exp(), engine=SweepEngine(cache=cache, parallel=False),
            options=RunOptions(journal=journal))
        journal.close()
        return cache, registry, journal.run_id, rs

    def test_clean_store(self, store):
        cache, registry, _, _ = store
        report = fsck_store(cache=cache, registry=registry)
        assert report.clean and not report.corrupt
        assert "store is clean" in report.render()

    def test_bit_flip_quarantined(self, store):
        cache, registry, _, _ = store
        path = next(iter(cache._entry_paths()))
        raw = open(path).read()
        with open(path, "w") as fh:
            fh.write(raw.replace('"times_s"', '"times_x"', 1))
        report = fsck_store(cache=cache, registry=registry)
        assert report.corrupt
        assert any(i.kind == "cache-digest" for i in report.issues)
        assert not os.path.exists(path)
        quarantine = os.path.join(cache.root, "quarantine")
        assert os.listdir(quarantine)
        # quarantined entries are invisible to the live store
        assert cache.disk_stats()["entries"] == 3
        assert fsck_store(cache=cache, registry=registry).clean

    def test_torn_journal_recovered(self, store):
        cache, registry, run_id, _ = store
        with open(registry.path_for(run_id), "a") as fh:
            fh.write('{"torn')
        report = fsck_store(cache=cache, registry=registry)
        assert report.corrupt
        assert any(i.kind == "journal-tail" for i in report.issues)
        assert registry.load(run_id).dropped == 0  # recovered
        assert fsck_store(cache=cache, registry=registry).clean

    def test_tampered_artifact_flagged(self, store, tmp_path):
        cache, registry, _, rs = store
        good = str(tmp_path / "good.json")
        bad = str(tmp_path / "bad.json")
        write_result_set_artifact(good, rs)
        write_result_set_artifact(bad, rs)
        doc = json.load(open(bad))
        doc["degraded"] = True
        with open(bad, "w") as fh:
            json.dump(doc, fh)
        report = fsck_store(cache=cache, registry=registry,
                            artifacts=(good, bad))
        assert report.corrupt
        assert any(i.kind == "artifact-digest" and i.path == bad
                   for i in report.issues)
        assert not any(i.path == good for i in report.issues)

    def test_unreadable_journal_quarantined(self, store):
        cache, registry, run_id, _ = store
        path = registry.path_for(run_id)
        atomic_write_text(path, "not a journal\n")
        report = fsck_store(cache=cache, registry=registry)
        assert report.corrupt
        [issue] = [i for i in report.issues
                   if i.kind == "journal-unreadable"]
        assert "quarantined to" in issue.action
        # moved aside, so the listing and a second pass are clean
        assert not os.path.exists(path)
        quarantine = os.path.join(registry.root, "quarantine")
        assert os.listdir(quarantine)
        assert registry.runs() == []
        assert fsck_store(cache=cache, registry=registry).clean

    def test_orphan_tmp_removed(self, store):
        cache, registry, _, _ = store
        shard = os.path.dirname(next(iter(cache._entry_paths())))
        dead = os.path.join(shard, "dead.tmp")
        with open(dead, "w") as fh:
            fh.write("junk")
        old = os.stat(dead).st_mtime - 3600  # past the grace window
        os.utime(dead, (old, old))
        report = fsck_store(cache=cache, registry=registry)
        assert not report.corrupt  # warning only
        assert report.tmp_removed == 1
        assert cache.disk_stats()["tmp_orphans"] == 0

    def test_young_tmp_survives_fsck(self, store):
        """A temp file younger than the grace window may be another
        worker's in-flight write: fsck must not unlink it."""
        cache, registry, _, _ = store
        shard = os.path.dirname(next(iter(cache._entry_paths())))
        with open(os.path.join(shard, "inflight.tmp"), "w") as fh:
            fh.write("junk")
        report = fsck_store(cache=cache, registry=registry)
        assert report.tmp_removed == 0
        assert cache.disk_stats()["tmp_orphans"] == 1


class TestJournalCLI:
    @pytest.fixture(autouse=True)
    def isolated(self, tmp_path, monkeypatch):
        from repro.harness.engine import (
            reset_default_engine,
            reset_default_run_options,
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_engine()
        reset_default_run_options()
        yield
        reset_default_engine()
        reset_default_run_options()

    def run_cli(self, capsys, *argv):
        from repro.cli import main
        rc = main(list(argv))
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    def test_run_journals_by_default(self, capsys):
        rc, _, err = self.run_cli(capsys, "run", "--models", "julia",
                                  "--sizes", "256")
        assert rc == 0
        assert "journaling run run-" in err
        rc, out, _ = self.run_cli(capsys, "runs", "list")
        assert rc == 0 and "complete" in out and "1/1 cells" in out

    def test_no_journal_flag(self, capsys):
        rc, _, err = self.run_cli(capsys, "run", "--models", "julia",
                                  "--sizes", "256", "--no-journal")
        assert rc == 0 and "journaling" not in err
        rc, out, _ = self.run_cli(capsys, "runs", "list")
        assert "no journaled runs" in out

    def test_journal_env_opt_out(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL", "off")
        rc, _, err = self.run_cli(capsys, "run", "--models", "julia",
                                  "--sizes", "256")
        assert rc == 0 and "journaling" not in err

    def test_interrupt_exit_code_and_cli_resume(self, capsys):
        argv = ("run", "--models", "julia,numba", "--sizes", "256,512",
                "--serial", "--no-cache")
        rc, baseline, _ = self.run_cli(capsys, *argv)
        assert rc == 0
        mp = interrupt_on_call(3)
        try:
            rc, out, err = self.run_cli(capsys, *argv)
        finally:
            mp.undo()
        assert rc == EXIT_INTERRUPTED and out == ""
        assert "resume with: repro run --resume" in err
        run_id = err.split("--resume ")[-1].split()[0].strip()
        rc, resumed, err = self.run_cli(capsys, "run", "--resume", run_id,
                                        "--serial", "--no-cache")
        assert rc == 0
        assert resumed == baseline  # byte-identical stdout
        assert "resuming run" in err

    def test_resume_unknown_run(self, capsys):
        rc, _, err = self.run_cli(capsys, "run", "--resume", "run-nope")
        assert rc == 1 and "no run" in err

    def test_runs_show(self, capsys):
        rc, _, err = self.run_cli(capsys, "run", "--models", "julia",
                                  "--sizes", "256")
        run_id = err.split("journaling run ")[-1].split()[0]
        rc, out, _ = self.run_cli(capsys, "runs", "show", run_id)
        assert rc == 0
        assert "status:     complete" in out
        assert "1/1 journaled" in out

    def test_runs_show_requires_id(self, capsys):
        rc, out, _ = self.run_cli(capsys, "runs", "show")
        assert rc == 2

    def test_export_artifact_and_fsck(self, capsys, tmp_path):
        artifact = str(tmp_path / "out.json")
        rc, out, _ = self.run_cli(capsys, "run", "--models", "julia",
                                  "--sizes", "256", "--export", artifact)
        assert rc == 0 and f"[artifact: {artifact} sha256:" in out
        rc, out, _ = self.run_cli(
            capsys, "fsck", artifact,
            "--cache-dir", str(tmp_path / "cache"))
        assert rc == 0 and "store is clean" in out

    def test_fsck_exit_code_on_corruption(self, capsys, tmp_path,
                                          monkeypatch):
        cache_dir = str(tmp_path / "cache")
        rc, _, _ = self.run_cli(capsys, "run", "--models", "julia",
                                "--sizes", "256")
        cache = ResultCache(cache_dir)
        path = next(iter(cache._entry_paths()))
        raw = open(path).read()
        with open(path, "w") as fh:
            fh.write(raw.replace('"times_s"', '"times_x"', 1))
        rc, out, _ = self.run_cli(capsys, "fsck", "--cache-dir", cache_dir)
        assert rc == EXIT_FSCK_CORRUPT
        assert "CORRUPT" in out and "quarantined" in out
        # the store self-heals: a second pass is clean
        rc, _, _ = self.run_cli(capsys, "fsck", "--cache-dir", cache_dir)
        assert rc == 0
