"""Tests for the performance-portability cascade analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cascade import Cascade, cascade, render_cascades
from repro.core.metrics import phi_paper


EFFS = {"Epyc 7A53": 0.550, "Ampere Altra": 0.713, "MI250x": None,
        "A100": 0.130}


class TestCascade:
    def test_best_first_ordering(self):
        c = cascade("numba", EFFS)
        added = [p.added_platform for p in c.points]
        assert added == ["Ampere Altra", "Epyc 7A53", "A100", "MI250x"]

    def test_unsupported_sorts_last(self):
        c = cascade("numba", EFFS)
        assert c.points[-1].added_platform == "MI250x"

    def test_final_matches_full_set_metric(self):
        c = cascade("numba", EFFS)
        assert c.final_phi == pytest.approx(phi_paper(list(EFFS.values())))

    def test_cliff_detection(self):
        c = cascade("numba", EFFS)
        assert c.cliff_platform == "MI250x"

    def test_no_cliff_for_fully_supported(self):
        c = cascade("julia", {"a": 0.9, "b": 0.87})
        assert c.cliff_platform is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cascade("x", {})

    @given(st.dictionaries(st.sampled_from(["p1", "p2", "p3", "p4", "p5"]),
                           st.one_of(st.none(), st.floats(0.01, 1.2)),
                           min_size=1, max_size=5))
    def test_phi_cascade_monotone_non_increasing(self, effs):
        """Adding platforms best-first can never raise the paper metric."""
        c = cascade("m", effs)
        phis = [p.phi_paper for p in c.points]
        for a, b in zip(phis, phis[1:]):
            assert b <= a + 1e-12

    @given(st.dictionaries(st.sampled_from(["p1", "p2", "p3", "p4"]),
                           st.floats(0.01, 1.2), min_size=1, max_size=4))
    def test_pp_le_phi_along_cascade(self, effs):
        c = cascade("m", effs)
        for p in c.points:
            assert p.pp_pennycook <= p.phi_paper + 1e-12


class TestRender:
    def test_side_by_side(self):
        a = cascade("kokkos", {"x": 0.9, "y": 0.3})
        b = cascade("numba", {"x": 0.5, "y": None})
        out = render_cascades([a, b])
        assert "kokkos Phi" in out and "numba PP" in out
        assert out.count("\n") >= 3

    def test_empty(self):
        assert render_cascades([]) == "(no cascades)"


class TestCLI:
    def test_cascade_command(self, capsys):
        from repro.cli import main
        rc = main(["cascade"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "collapses when MI250x joins" in out
        assert "julia" in out
