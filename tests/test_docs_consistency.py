"""Documentation consistency: DESIGN/EXPERIMENTS/README must track the code.

These tests keep the three top-level documents honest: every experiment
id in DESIGN.md's index must point at an existing bench file, every
module path it lists must exist, and the paper listings embedded in the
models package must contain the constructs the paper's figures show.
"""

import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _read(name: str) -> str:
    with open(os.path.join(REPO, name)) as fh:
        return fh.read()


class TestDesignIndex:
    def test_every_bench_target_exists(self):
        design = _read("DESIGN.md")
        for match in re.finditer(r"`benchmarks/(test_\w+\.py)`", design):
            path = os.path.join(REPO, "benchmarks", match.group(1))
            assert os.path.exists(path), match.group(1)

    def test_every_experiment_has_a_row(self):
        design = _read("DESIGN.md")
        for exp_id in [f"E{i}" for i in range(1, 19)]:
            assert f"| {exp_id} " in design, f"{exp_id} missing from index"

    def test_inventory_modules_exist(self):
        design = _read("DESIGN.md")
        # expand brace groups like repro/sim/{fluid,roofline}.py
        for match in re.finditer(r"`repro/([\w/]+)/\{([\w,]+)\}\.py`", design):
            pkg, names = match.groups()
            for name in names.split(","):
                path = os.path.join(REPO, "src", "repro", pkg, f"{name}.py")
                assert os.path.exists(path), f"repro/{pkg}/{name}.py"


class TestExperimentsDoc:
    def test_mentions_every_table_and_figure(self):
        text = _read("EXPERIMENTS.md")
        for artifact in ("Table I", "Table II", "Table III",
                         "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7"):
            assert artifact in text, artifact

    def test_published_phi_values_present(self):
        text = _read("EXPERIMENTS.md")
        for value in ("0.738", "0.897", "0.348", "0.684", "0.882", "0.288"):
            assert value in text, value

    def test_deviations_section_lists_residuals(self):
        text = _read("EXPERIMENTS.md")
        assert "Deviations" in text
        assert "0.72" in text        # the Kokkos/CUDA fp32 residual
        assert "0.95" in text        # the Julia/AMDGPU fp32 residual
        assert "1.30" in text or "Migration tax" in text


class TestReadme:
    def test_example_scripts_exist(self):
        readme = _read("README.md")
        for match in re.finditer(r"examples/(\w+)\.py", readme):
            path = os.path.join(REPO, "examples", f"{match.group(1)}.py")
            assert os.path.exists(path), match.group(1)

    def test_headline_table_matches_paper_constants(self):
        """The README's headline table quotes the paper's Phi values."""
        readme = _read("README.md")
        for value in ("0.738", "0.897", "0.348"):
            assert value in readme, value


class TestPaperListings:
    def test_listings_contain_figure_constructs(self):
        """Each embedded listing shows the construct the paper highlights."""
        from repro.core.types import DeviceKind
        from repro.models.listings import listing_for

        expectations = {
            ("c-openmp", DeviceKind.CPU): "#pragma omp parallel for",
            ("kokkos", DeviceKind.CPU): "KOKKOS_LAMBDA",
            ("julia", DeviceKind.CPU): "@threads",
            ("numba", DeviceKind.CPU): "prange",
            ("cuda", DeviceKind.GPU): "blockIdx",
            ("julia", DeviceKind.GPU): "@inbounds",
            ("numba", DeviceKind.GPU): "cuda.grid(2)",
            ("kernelabstractions", DeviceKind.GPU): "@kernel",
            ("pyomp", DeviceKind.CPU): "openmp",
        }
        for (model, device), construct in expectations.items():
            src = listing_for(model, device)
            assert src is not None, (model, device)
            assert construct in src, (model, device, construct)

    def test_julia_cpu_listing_has_inbounds_and_temp(self):
        from repro.core.types import DeviceKind
        from repro.models.listings import listing_for

        src = listing_for("julia", DeviceKind.CPU)
        assert "@inbounds" in src and "temp = B[l, j]" in src
