"""The diagnostic-code registry is a stable, documented contract.

Consumers key on codes (CI gates, the JSON schema, EXPERIMENTS.md prose),
so adding a code means updating this snapshot *and* docs/API.md in the
same change; renaming or removing one is a breaking change.
"""

import os
import re

from repro.ir.lint import CODES, Severity
from repro.ir.lint.diagnostics import Diagnostic

#: Every stable code, by family.  This is the snapshot: a mismatch means
#: the registry changed without the paperwork.
EXPECTED_CODES = {
    # structural verification
    "V001",
    # dependence facts
    "D001",
    # write races
    "R001", "R002", "R003",
    # pass legality
    "L001", "L002", "L003", "L004", "L005",
    # stride warnings (lint)
    "W001", "W002", "W003",
    # audit: memory access / locality
    "P001", "P002", "P003", "P004",
    # audit: occupancy / registers
    "O001", "O002", "O003", "O004",
    # audit: precision flow
    "F001", "F002", "F003", "F004",
}

DOCS = os.path.join(os.path.dirname(__file__), os.pardir, "docs", "API.md")


class TestCodeRegistry:
    def test_snapshot(self):
        assert set(CODES) == EXPECTED_CODES

    def test_every_code_has_a_nonempty_meaning(self):
        assert all(CODES[c].strip() for c in CODES)

    def test_diagnostics_reject_unknown_codes(self):
        import pytest

        with pytest.raises(ValueError):
            Diagnostic(code="Z999", severity=Severity.INFO, message="x")

    def test_every_code_documented_in_api_md(self):
        with open(DOCS) as fh:
            text = fh.read()
        documented = set(re.findall(r"^\| ([A-Z]\d{3}) \|", text,
                                    flags=re.MULTILINE))
        assert documented == EXPECTED_CODES

    def test_families_are_disjoint_prefixes(self):
        """One letter, one family: codes sort into their doc tables."""
        assert {c[0] for c in CODES} == {"V", "D", "R", "L", "W",
                                         "P", "O", "F"}
