"""Tests for the productivity metrics (Sec. V qualitative discussion)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.productivity import code_divergence, productivity_report
from repro.models import all_models


class TestCodeDivergence:
    def test_single_source_zero(self):
        assert code_divergence([20]) == 0.0
        assert code_divergence([20, 20, 20]) == 0.0

    def test_known_value(self):
        # |10-20|/20 = 0.5
        assert code_divergence([10, 20]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            code_divergence([])

    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=8))
    def test_bounded(self, lines):
        d = code_divergence(lines)
        assert 0.0 <= d < 1.0

    @given(st.lists(st.integers(1, 1000), min_size=2, max_size=8))
    def test_permutation_invariant(self, lines):
        assert code_divergence(lines) == pytest.approx(
            code_divergence(list(reversed(lines))))


class TestReport:
    def test_one_row_per_model(self):
        rows = productivity_report(all_models())
        assert len(rows) == len(all_models())

    def test_compiled_vs_jit(self):
        rows = {r.model: r for r in productivity_report(all_models())}
        assert rows["C/OpenMP"].needs_compile_step
        assert rows["Kokkos"].needs_compile_step
        assert not rows["Julia"].needs_compile_step
        assert not rows["Python/Numba"].needs_compile_step

    def test_dynamic_languages_shortest(self):
        """The paper's productivity claim: Julia/Numba kernels are the
        most compact; Kokkos carries the most ceremony."""
        rows = {r.model: r for r in productivity_report(all_models())}
        assert rows["Julia"].total_lines < rows["Kokkos"].total_lines
        assert rows["Python/Numba"].total_lines < rows["Kokkos"].total_lines
