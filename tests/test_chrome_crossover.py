"""Tests for Chrome trace export and the CPU/GPU crossover study."""

import json

import pytest

from repro.core.types import DeviceKind, Precision
from repro.errors import ExperimentError
from repro.harness import Experiment, device_crossover, run_experiment
from repro.machine import CRUSHER, WOMBAT
from repro.trace import EventKind, Profiler, chrome_trace_json, to_chrome_trace


class TestChromeTrace:
    def _events(self):
        p = Profiler()
        p.record(EventKind.MEMCPY_H2D, "A,B -> device", 0.001, bytes=1024)
        p.record(EventKind.KERNEL, "gemm", 0.002, grid=(4, 4))
        p.record(EventKind.MEMCPY_D2H, "C -> host", 0.0005)
        return p.events

    def test_event_structure(self):
        events = to_chrome_trace(self._events())
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        kernel = [e for e in complete if e["cat"] == "kernel"][0]
        assert kernel["ts"] == pytest.approx(1000.0)   # µs
        assert kernel["dur"] == pytest.approx(2000.0)
        assert kernel["args"]["grid"] == [4, 4]

    def test_metadata_rows(self):
        events = to_chrome_trace(self._events())
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert "repro-sim" in names
        assert "Compute (kernels)" in names

    def test_json_loads_and_has_display_unit(self):
        doc = json.loads(chrome_trace_json(self._events()))
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) >= 4

    def test_distinct_rows_per_kind(self):
        events = to_chrome_trace(self._events())
        tids = {e["cat"]: e["tid"] for e in events if e["ph"] == "X"}
        assert len(set(tids.values())) == 3

    def test_end_to_end_from_runner(self):
        exp = Experiment(
            exp_id="chrome", title="t", node_name="Wombat",
            device=DeviceKind.GPU, precision=Precision.FP64,
            models=("cuda",), sizes=(512,), reps=3)
        prof = Profiler()
        run_experiment(exp, profiler=prof)
        doc = json.loads(chrome_trace_json(prof.events))
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"kernel", "memcpy-h2d", "memcpy-d2h"} <= cats


class TestCrossover:
    def test_structure(self):
        study = device_crossover(WOMBAT, "julia", sizes=(256, 1024))
        assert [p.size for p in study.points] == [256, 1024]
        for p in study.points:
            assert p.gpu_e2e_seconds > p.gpu_kernel_seconds

    def test_fp64_naive_cpu_competitive(self):
        """Within the model, a naive FP64 GEMM does not hand the GPU an
        automatic win over 64 pinned vectorised cores — the paper's point
        that naive kernels are a performance lower bound for GPUs."""
        study = device_crossover(CRUSHER, "julia", Precision.FP64,
                                 sizes=(512, 2048, 4096))
        assert study.crossover_size(end_to_end=True) is None

    def test_fp16_gpu_wins_on_crusher(self):
        """Julia FP16: software-emulated on the Zen3 CPU, native on the
        MI250X — the GPU wins decisively."""
        study = device_crossover(CRUSHER, "julia", Precision.FP16,
                                 sizes=(512, 2048, 4096))
        cross = study.crossover_size(end_to_end=True)
        assert cross is not None and cross <= 2048

    def test_fp16_cpu_wins_on_wombat(self):
        """...but on Wombat the Altra's native FP16 SIMD keeps the CPU in
        front of the A100 for this naive kernel."""
        study = device_crossover(WOMBAT, "julia", Precision.FP16,
                                 sizes=(2048, 4096))
        assert study.crossover_size(end_to_end=True) is None

    def test_transfers_push_crossover_out(self):
        study = device_crossover(CRUSHER, "julia", Precision.FP16,
                                 sizes=(256, 512, 1024, 2048, 4096))
        k = study.crossover_size(end_to_end=False)
        e = study.crossover_size(end_to_end=True)
        assert k is not None and e is not None
        assert e >= k

    def test_unsupported_model_raises(self):
        with pytest.raises(ExperimentError):
            device_crossover(CRUSHER, "numba")  # no AMD GPU backend

    def test_render(self):
        out = device_crossover(WOMBAT, "julia", sizes=(256,)).render()
        assert "winner(e2e)" in out and "crossover" in out
