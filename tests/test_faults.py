"""Tests for the resilience layer: fault injection, retries, degraded mode.

The contracts pinned here:

* determinism — same fault seed => same faults => same retry counts =>
  byte-identical ResultSet; a recoverable run equals a fault-free one;
* isolation — a permanently failing cell degrades to a ``failed``
  measurement (the paper's e = 0 accounting) instead of killing the
  sweep, unless ``fail_fast`` asks for the abort;
* hygiene — failed cells never enter the result cache, and fault-enabled
  runs fingerprint their cells apart from clean runs;
* the unified ``run_experiment`` entrypoint and its deprecation shim.
"""

import json
import warnings

import pytest

from repro.core.types import DeviceKind, MatrixShape, Precision
from repro.errors import CellFailure, ConfigError, RetryExhaustedError
from repro.harness import (
    Experiment,
    run_experiment,
    run_experiment_serial,
)
from repro.harness.engine import (
    ResultCache,
    RetryPolicy,
    RunOptions,
    SweepEngine,
    cell_fingerprint,
    default_run_options,
    reset_default_run_options,
)
from repro.harness.export import (
    result_set_from_dict,
    result_set_to_dict,
    result_set_to_json,
)
from repro.harness.report import render_result_set
from repro.sim.faults import (
    FAULT_COSTS,
    FaultConfig,
    FaultInjector,
    FaultKind,
)
from repro.trace.events import EventKind


def small_exp(**kw):
    defaults = dict(
        exp_id="flt-cpu", title="fault test", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=("c-openmp", "julia"), sizes=(256, 512), threads=64, reps=5,
    )
    defaults.update(kw)
    return Experiment(**defaults)


def run_opts(**kw):
    kw.setdefault("cache", False)
    return RunOptions(**kw)


# --------------------------------------------------------------------------
# FaultConfig parsing and the injector
# --------------------------------------------------------------------------

class TestFaultConfig:
    def test_default_config_is_disabled(self):
        assert not FaultConfig().enabled

    def test_bare_float_shorthand(self):
        cfg = FaultConfig.parse("0.25")
        assert cfg.rate == 0.25 and cfg.enabled

    def test_full_spec(self):
        cfg = FaultConfig.parse(
            "rate=0.2,seed=7,kinds=oom|timeout,always=numba@512+julia@1024")
        assert cfg.rate == 0.2
        assert cfg.seed == 7
        assert cfg.kinds == (FaultKind.OOM, FaultKind.TIMEOUT)
        assert cfg.always == ("numba@512", "julia@1024")

    @pytest.mark.parametrize("spec", [
        "", "rate=lots", "seed=pi", "kinds=gremlins", "banana=1", "rate",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            FaultConfig.parse(spec)

    def test_rate_bounds_validated(self):
        with pytest.raises(ConfigError):
            FaultConfig(rate=1.5)
        with pytest.raises(ConfigError):
            FaultConfig(rate=-0.1)
        # The endpoints are legal per-attempt probabilities.
        assert FaultConfig(rate=1.0).rate == 1.0
        assert FaultConfig(rate=0.0).rate == 0.0

    def test_rate_bounds_checked_at_parse_time(self):
        with pytest.raises(ConfigError, match=r"outside \[0, 1\]"):
            FaultConfig.parse("rate=1.5")
        with pytest.raises(ConfigError, match=r"outside \[0, 1\]"):
            FaultConfig.parse("rate=-0.25")

    def test_duplicate_keys_rejected_at_parse_time(self):
        with pytest.raises(ConfigError, match="duplicate fault spec key"):
            FaultConfig.parse("rate=0.2,rate=0.3")
        with pytest.raises(ConfigError, match="duplicate fault spec key"):
            FaultConfig.parse("seed=1,kinds=oom,seed=2")

    def test_payload_is_canonical_json(self):
        cfg = FaultConfig.parse("rate=0.2,seed=7")
        assert json.dumps(cfg.payload(), sort_keys=True)  # serialisable
        assert cfg.payload() == FaultConfig.parse("seed=7,rate=0.2").payload()


class TestResilienceSpecGrammars:
    """The --breaker/--fallback grammars mirror FaultConfig.parse: same
    key=value idiom, same duplicate-key rejection, spec() round-trips."""

    @pytest.mark.parametrize("spec", [
        "3", "threshold=2", "threshold=2,cooldown=1e4",
        "threshold=5,cooldown=0.5",
    ])
    def test_breaker_spec_round_trips(self, spec):
        from repro.harness.health import BreakerPolicy
        policy = BreakerPolicy.parse(spec)
        assert BreakerPolicy.parse(policy.spec()) == policy

    @pytest.mark.parametrize("spec", [
        "numba@gpu=numba@cpu+reference",
        "numba@gpu=reference,julia@gpu=julia@cpu",
        "julia@cpu=reference",
    ])
    def test_fallback_spec_round_trips(self, spec):
        from repro.harness.health import FallbackLadder
        ladder = FallbackLadder.parse(spec)
        assert FallbackLadder.parse(ladder.spec()) == ladder

    def test_duplicate_keys_rejected_like_faults(self):
        from repro.harness.health import BreakerPolicy, FallbackLadder
        with pytest.raises(ConfigError, match="duplicate breaker spec key"):
            BreakerPolicy.parse("threshold=2,threshold=3")
        with pytest.raises(ConfigError, match="duplicate fallback spec key"):
            FallbackLadder.parse("numba@gpu=reference,numba@gpu=numba@cpu")


class TestFaultInjector:
    def test_probe_is_deterministic(self):
        inj = FaultInjector(FaultConfig(rate=0.5, seed=11))
        shape = MatrixShape.square(512)
        a = [inj.probe("e", "julia", shape, k) for k in range(1, 20)]
        b = [inj.probe("e", "julia", shape, k) for k in range(1, 20)]
        assert a == b
        assert any(f is not None for f in a)
        assert any(f is None for f in a)

    def test_always_pattern_is_permanent(self):
        inj = FaultInjector(FaultConfig(always=("numba@512",)))
        f = inj.probe("e", "numba", MatrixShape.square(512), 1)
        assert f is not None and f.permanent
        assert inj.probe("e", "numba", MatrixShape.square(256), 1) is None
        assert inj.probe("e", "julia", MatrixShape.square(512), 1) is None

    def test_full_shape_pattern(self):
        inj = FaultInjector(FaultConfig(always=("julia@512x256x128",)))
        assert inj.probe("e", "julia", MatrixShape(512, 256, 128), 1)
        assert inj.probe("e", "julia", MatrixShape(512, 256, 64), 1) is None

    def test_fault_costs_charged_by_kind(self):
        inj = FaultInjector(FaultConfig(always=("numba",),
                                        kinds=(FaultKind.TIMEOUT,)))
        f = inj.probe("e", "numba", MatrixShape.square(256), 1)
        assert f.kind is FaultKind.TIMEOUT
        assert f.cost_s == FAULT_COSTS[FaultKind.TIMEOUT] == 30.0


# --------------------------------------------------------------------------
# engine behaviour under faults
# --------------------------------------------------------------------------

class TestEngineResilience:
    def test_recovered_run_byte_identical_to_fault_free(self):
        exp = small_exp()
        clean = run_experiment(exp, options=run_opts())
        noisy = run_experiment(exp, options=run_opts(
            faults=FaultConfig(rate=0.4, seed=0),
            retry=RetryPolicy(max_attempts=8)))
        assert result_set_to_json(noisy) == result_set_to_json(clean)

    def test_same_seed_same_retry_counts(self):
        exp = small_exp()
        opts = run_opts(faults=FaultConfig(rate=0.4, seed=0),
                        retry=RetryPolicy(max_attempts=8))
        eng1 = SweepEngine(cache=None, parallel=False)
        eng1.run(exp, options=opts)
        eng2 = SweepEngine(cache=None, parallel=True, max_workers=8)
        eng2.run(exp, options=opts)
        by_cell1 = {(c.model, c.shape): (c.attempts, c.faults)
                    for c in eng1.last_report.cells}
        by_cell2 = {(c.model, c.shape): (c.attempts, c.faults)
                    for c in eng2.last_report.cells}
        assert by_cell1 == by_cell2
        assert eng1.last_report.total_attempts > len(by_cell1)

    def test_permanent_failure_degrades_not_raises(self):
        exp = small_exp()
        rs = run_experiment(exp, options=run_opts(
            faults=FaultConfig(always=("julia@512",))))
        assert rs.degraded
        [bad] = rs.failed_cells()
        assert bad.model == "julia" and bad.shape.m == 512
        assert bad.status == "failed" and not bad.supported
        assert rs.status_counts() == {"ok": 3, "unsupported": 0,
                                      "failed": 1, "substituted": 0}
        # the other cells are untouched by the failure
        assert rs.cell("julia", 256).supported
        assert rs.supported("julia")  # some cells survive

    def test_retry_exhaustion_fails_cell(self):
        exp = small_exp(models=("julia",), sizes=(256,))
        rs = run_experiment(exp, options=run_opts(
            faults=FaultConfig(rate=0.999999, seed=1),
            retry=RetryPolicy(max_attempts=3)))
        [bad] = rs.failed_cells()
        assert "retries exhausted (3 attempts)" in bad.note

    def test_budget_exhaustion_fails_cell(self):
        exp = small_exp(models=("julia",), sizes=(256,))
        # every attempt times out (30 s simulated) against a 10 s budget:
        # the first fault alone exceeds it
        rs = run_experiment(exp, options=run_opts(
            faults=FaultConfig(rate=0.999999, seed=1,
                               kinds=(FaultKind.TIMEOUT,)),
            retry=RetryPolicy(max_attempts=100, max_cell_seconds=10.0)))
        [bad] = rs.failed_cells()
        assert "budget exhausted" in bad.note

    def test_fail_fast_raises_cell_failure(self):
        exp = small_exp()
        with pytest.raises(CellFailure):
            run_experiment(exp, options=run_opts(
                faults=FaultConfig(always=("julia@512",)), fail_fast=True))

    def test_fail_fast_retry_exhaustion_raises_sharper_error(self):
        exp = small_exp(models=("julia",), sizes=(256,))
        with pytest.raises(RetryExhaustedError):
            run_experiment(exp, options=run_opts(
                faults=FaultConfig(rate=0.999999, seed=1),
                retry=RetryPolicy(max_attempts=2), fail_fast=True))

    def test_failed_cells_never_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        engine = SweepEngine(cache=cache, parallel=False)
        exp = small_exp()
        opts = RunOptions(faults=FaultConfig(always=("julia@512",)))
        engine.run(exp, options=opts)
        warm = engine.run(exp, options=opts)
        report = engine.last_report
        by_cell = {(c.model, c.shape): c for c in report.cells}
        # ok cells were served from cache; the failed one re-executed
        assert by_cell[("c-openmp", "256x256x256")].cached
        assert not by_cell[("julia", "512x512x512")].cached
        assert by_cell[("julia", "512x512x512")].failed
        assert warm.degraded

    def test_fault_config_changes_fingerprint(self):
        exp = small_exp()
        shape = MatrixShape.square(256)
        clean = cell_fingerprint(exp, "julia", shape)
        disabled = cell_fingerprint(exp, "julia", shape, faults=FaultConfig())
        faulty = cell_fingerprint(exp, "julia", shape,
                                  faults=FaultConfig(rate=0.2))
        assert clean == disabled  # disabled config keeps old keys stable
        assert faulty != clean
        assert faulty != cell_fingerprint(exp, "julia", shape,
                                          faults=FaultConfig(rate=0.3))

    def test_injection_does_not_perturb_survivor_samples(self):
        # the fault streams are disjoint from the variability streams, so
        # a cell that recovers produces the exact fault-free samples
        exp = small_exp(models=("julia",), sizes=(256,))
        clean = run_experiment(exp, options=run_opts())
        noisy = run_experiment(exp, options=run_opts(
            faults=FaultConfig(rate=0.4, seed=0),
            retry=RetryPolicy(max_attempts=50)))
        assert (clean.cell("julia", 256).times_s
                == noisy.cell("julia", 256).times_s)


# --------------------------------------------------------------------------
# degraded-mode plumbing: reports, Table III, export
# --------------------------------------------------------------------------

class TestDegradedMode:
    def failed_rs(self):
        return run_experiment(small_exp(), options=run_opts(
            faults=FaultConfig(always=("julia@512",))))

    def test_render_marks_failed_cells(self):
        out = render_result_set(self.failed_rs())
        assert "FAIL" in out
        assert "DEGRADED: 1 of 4 cells failed" in out
        assert "failed -" in out

    def test_efficiency_series_charges_zero(self):
        rs = self.failed_rs()
        series = rs.efficiency_series("julia", "c-openmp")
        assert len(series) == 2 and series[1] == 0.0 and series[0] > 0.0

    def test_all_failed_model_gets_zero_not_dash(self):
        from repro.core.efficiency import efficiency_table_for
        rs = run_experiment(small_exp(), options=run_opts(
            faults=FaultConfig(always=("julia",))))
        [julia] = [c for c in efficiency_table_for(rs, ["julia"], "Epyc 7A53")]
        assert julia.value == 0.0
        assert julia.render() == "0.000"

    def test_export_roundtrip_preserves_status(self):
        rs = self.failed_rs()
        doc = result_set_to_dict(rs)
        assert doc["schema"] == 4 and doc["degraded"] is True
        loaded = result_set_from_dict(doc)
        assert loaded.measurements == rs.measurements
        assert loaded.degraded
        assert [m.status for m in loaded.measurements] \
            == [m.status for m in rs.measurements]

    def test_v2_documents_still_load(self):
        rs = run_experiment(small_exp(), options=run_opts())
        doc = result_set_to_dict(rs)
        doc["schema"] = 2
        doc.pop("degraded")
        for mdata in doc["measurements"]:
            mdata.pop("status")
        loaded = result_set_from_dict(doc)
        assert loaded.measurements == rs.measurements
        assert not loaded.degraded

    def test_sweep_report_lists_degraded_cells(self):
        engine = SweepEngine(cache=None, parallel=False)
        engine.run(small_exp(),
                   options=RunOptions(faults=FaultConfig(always=("julia@512",))))
        text = engine.last_report.render()
        assert "1 FAILED" in text
        assert "degraded cells (reported as e=0):" in text
        assert "[FAILED]" in text

    def test_trace_records_fault_and_retry_events(self):
        from repro.trace.profiler import Profiler
        exp = small_exp(models=("julia",), sizes=(256,))
        prof = Profiler()
        run_experiment(exp, profiler=prof, options=run_opts(
            faults=FaultConfig(rate=0.4, seed=0),
            retry=RetryPolicy(max_attempts=50)))
        kinds = {e.kind for e in prof.events}
        assert EventKind.FAULT in kinds and EventKind.RETRY in kinds
        # fault spans carry their simulated cost
        fault_ev = next(e for e in prof.events if e.kind is EventKind.FAULT)
        assert fault_ev.duration_s in FAULT_COSTS.values()


# --------------------------------------------------------------------------
# timeline layout
# --------------------------------------------------------------------------

class TestTimeline:
    def test_cells_laid_at_real_offsets(self):
        engine = SweepEngine(cache=None, parallel=False)
        engine.run(small_exp())
        report = engine.last_report
        spans = [e for e in report.timeline().events
                 if e.kind is EventKind.CELL]
        assert len(spans) == 4
        starts = [e.start_s for e in spans]
        # serial execution: cells start strictly after their predecessor,
        # not all stacked at t=0
        assert starts == sorted(starts)
        assert sum(1 for s in starts if s == 0.0) <= 1

    def test_timeline_round_trips_through_chrome_export(self):
        from repro.trace.chrome import chrome_trace_json
        engine = SweepEngine(cache=None, parallel=False)
        engine.run(small_exp(),
                   options=RunOptions(faults=FaultConfig(always=("julia@512",))))
        doc = json.loads(chrome_trace_json(engine.last_report.timeline().events))
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert spans
        assert {"Sweep cells", "Result cache"} <= {
            e["args"]["name"] for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"}


# --------------------------------------------------------------------------
# the unified entrypoint, RunOptions, and the shim
# --------------------------------------------------------------------------

class TestUnifiedApi:
    def test_engine_strings(self):
        exp = small_exp()
        a = run_experiment(exp, engine="serial", options=run_opts())
        b = run_experiment(exp, engine="parallel", options=run_opts())
        assert a.measurements == b.measurements

    def test_engine_instance_accepted(self):
        engine = SweepEngine(cache=None, parallel=False)
        rs = run_experiment(small_exp(), engine=engine)
        assert engine.last_report is not None
        assert len(rs.measurements) == 4

    def test_bad_engine_rejected(self):
        with pytest.raises(ConfigError, match="engine"):
            run_experiment(small_exp(), engine="hyperspeed")

    def test_serial_shim_warns_and_matches(self):
        exp = small_exp()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rs = run_experiment_serial(exp)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert rs.measurements \
            == run_experiment(exp, options=run_opts()).measurements

    def test_options_are_frozen(self):
        opts = RunOptions()
        with pytest.raises(Exception):
            opts.fail_fast = True
        with pytest.raises(Exception):
            RetryPolicy().max_attempts = 5

    def test_options_validate(self):
        with pytest.raises(ConfigError):
            RunOptions(jobs=0)
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(max_cell_seconds=-1.0)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.5,
                             backoff_factor=2.0)
        assert [policy.backoff_s(k) for k in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_options_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "rate=0.2,seed=9")
        monkeypatch.setenv("REPRO_RETRIES", "3")
        monkeypatch.setenv("REPRO_BACKOFF", "0.25")
        monkeypatch.setenv("REPRO_MAX_CELL_SECONDS", "60")
        monkeypatch.setenv("REPRO_FAIL_FAST", "1")
        opts = RunOptions.from_env()
        assert opts.faults.rate == 0.2 and opts.faults.seed == 9
        assert opts.retry.max_attempts == 4
        assert opts.retry.backoff_base_s == 0.25
        assert opts.retry.max_cell_seconds == 60.0
        assert opts.fail_fast and opts.resilient

    def test_options_env_defaults_are_benign(self, monkeypatch):
        for var in ("REPRO_FAULTS", "REPRO_RETRIES", "REPRO_BACKOFF",
                    "REPRO_MAX_CELL_SECONDS", "REPRO_FAIL_FAST"):
            monkeypatch.delenv(var, raising=False)
        opts = RunOptions.from_env()
        assert not opts.resilient
        assert opts == RunOptions()

    def test_bad_env_retries_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "many")
        with pytest.raises(ConfigError):
            RunOptions.from_env()
        monkeypatch.setenv("REPRO_RETRIES", "-1")
        with pytest.raises(ConfigError):
            RunOptions.from_env()

    def test_default_run_options_process_wide(self, monkeypatch):
        from repro.harness.engine import set_default_run_options
        monkeypatch.setenv("REPRO_FAULTS", "0.1")
        reset_default_run_options()
        try:
            assert default_run_options().faults.rate == 0.1
            override = RunOptions(fail_fast=True)
            set_default_run_options(override)
            assert default_run_options() is override
        finally:
            reset_default_run_options()

    def test_run_experiment_inherits_env_options(self, monkeypatch,
                                                 tmp_path):
        from repro.harness.engine import reset_default_engine
        monkeypatch.setenv("REPRO_CACHE", "off")
        monkeypatch.setenv("REPRO_FAULTS", "always=julia@512")
        reset_default_engine()
        reset_default_run_options()
        try:
            rs = run_experiment(small_exp())
            assert rs.degraded
        finally:
            reset_default_engine()
            reset_default_run_options()
