"""Tests for the tiled-GEMM analytic model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import MatrixShape, Precision
from repro.machine import AMPERE_ALTRA, EPYC_7A53
from repro.sim.blocking import (
    best_tile_for,
    blocked_gemm_estimate,
    blocked_traffic_bytes,
)

SHAPE = MatrixShape.square(4096)


class TestTraffic:
    def test_exact_for_divisible(self):
        got = blocked_traffic_bytes(MatrixShape(128, 128, 128), 32,
                                    Precision.FP64)
        assert got == 4 * 4 * 4 * 2 * 32 * 32 * 8 + 2 * 128 * 128 * 8

    def test_bigger_tiles_less_traffic(self):
        t32 = blocked_traffic_bytes(SHAPE, 32, Precision.FP64)
        t128 = blocked_traffic_bytes(SHAPE, 128, Precision.FP64)
        assert t128 < t32

    def test_mixed_precision_output(self):
        """FP16 tiles, FP32 C traffic (the paper's accumulation scheme)."""
        t = blocked_traffic_bytes(MatrixShape(64, 64, 64), 64, Precision.FP16)
        assert t == 2 * 64 * 64 * 2 + 2 * 64 * 64 * 4

    def test_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            blocked_traffic_bytes(SHAPE, 0, Precision.FP64)

    @given(st.integers(1, 256))
    @settings(max_examples=30, deadline=None)
    def test_traffic_at_least_compulsory(self, tile):
        """Can never go below one read of A and B plus the C update."""
        t = blocked_traffic_bytes(SHAPE, tile, Precision.FP64)
        compulsory = (SHAPE.m * SHAPE.k + SHAPE.k * SHAPE.n) * 8 \
            + 2 * SHAPE.m * SHAPE.n * 8
        assert t >= compulsory * 0.99


class TestBestTile:
    def test_epyc_l2_fit(self):
        # 512 KiB private L2, fp64: 3 * b^2 * 8 <= 512 KiB -> b = 128
        assert best_tile_for(EPYC_7A53, Precision.FP64) == 128

    def test_fp32_tile_at_least_fp64(self):
        """Half the element size grows the fitting tile by sqrt(2); with
        power-of-two rounding that is >= (here both land on 128, while
        the 4x element shrink to FP16 does cross a power of two)."""
        assert best_tile_for(EPYC_7A53, Precision.FP32) >= \
            best_tile_for(EPYC_7A53, Precision.FP64)
        assert best_tile_for(EPYC_7A53, Precision.FP16) > \
            best_tile_for(EPYC_7A53, Precision.FP64)

    def test_l1_smaller_than_l2(self):
        assert best_tile_for(EPYC_7A53, Precision.FP64, "L1") < \
            best_tile_for(EPYC_7A53, Precision.FP64, "L2")


class TestEstimate:
    def test_tiny_tiles_memory_bound(self):
        est = blocked_gemm_estimate(EPYC_7A53, SHAPE, 8)
        assert est.bound == "memory"

    def test_fitting_tiles_compute_bound(self):
        fit = best_tile_for(EPYC_7A53, Precision.FP64)
        est = blocked_gemm_estimate(EPYC_7A53, SHAPE, fit)
        assert est.bound == "compute"

    def test_oversized_tiles_clamped(self):
        fit = best_tile_for(EPYC_7A53, Precision.FP64)
        assert blocked_gemm_estimate(EPYC_7A53, SHAPE, 8 * fit).dram_bytes \
            == blocked_gemm_estimate(EPYC_7A53, SHAPE, fit).dram_bytes

    def test_gflops_bounded_by_peak(self):
        for cpu in (EPYC_7A53, AMPERE_ALTRA):
            est = blocked_gemm_estimate(cpu, SHAPE, 64)
            assert 0 < est.gflops(SHAPE) <= cpu.peak_gflops(Precision.FP64)

    def test_seconds_is_max_of_terms(self):
        est = blocked_gemm_estimate(EPYC_7A53, SHAPE, 64)
        assert est.seconds == max(est.compute_seconds, est.memory_seconds)
