"""Shared test fixtures.

Every test gets a private runs directory: ``repro run`` journals by
default, and without this the suite would scatter write-ahead journals
into the developer's real ``$XDG_CACHE_HOME/repro/runs``.

Every test also runs under a hang guard: the robustness suite
deliberately wedges workers and daemons, and a recovery bug must fail
CI with a traceback instead of hanging it until the job-level timeout.
``faulthandler.dump_traceback_later`` is re-armed per test (the stdlib
mechanism pytest-timeout wraps), so a test exceeding
``$REPRO_TEST_TIMEOUT`` seconds (default 300; 0 disables) dumps every
thread's stack and aborts the run.
"""

import faulthandler
import os

import pytest

_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))


@pytest.fixture(autouse=True)
def _hang_guard():
    if _TEST_TIMEOUT_S > 0:
        faulthandler.dump_traceback_later(_TEST_TIMEOUT_S, exit=True)
    try:
        yield
    finally:
        if _TEST_TIMEOUT_S > 0:
            faulthandler.cancel_dump_traceback_later()
