"""Shared test fixtures.

Every test gets a private runs directory: ``repro run`` journals by
default, and without this the suite would scatter write-ahead journals
into the developer's real ``$XDG_CACHE_HOME/repro/runs``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
