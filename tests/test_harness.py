"""Tests for the benchmark harness: experiments, runner, results, reports."""

import pytest

from repro.core.types import DeviceKind, MatrixShape, Precision
from repro.errors import ExperimentError
from repro.harness import (
    Experiment,
    QUICK_SIZES,
    run_experiment,
    run_measurement,
)
from repro.harness.figures import crusher_cpu_experiment, wombat_gpu_experiment
from repro.harness.report import ascii_chart, ascii_table, render_result_set
from repro.harness.results import Measurement, ResultSet
from repro.models import model_by_name
from repro.trace.events import EventKind
from repro.trace.profiler import Profiler


def small_cpu_exp(**kw):
    defaults = dict(
        exp_id="t-cpu", title="test", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=("c-openmp", "julia"), sizes=(256, 512), threads=64, reps=5,
    )
    defaults.update(kw)
    return Experiment(**defaults)


class TestExperiment:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            small_cpu_exp(models=())
        with pytest.raises(ExperimentError):
            small_cpu_exp(sizes=(0,))
        with pytest.raises(ExperimentError):
            small_cpu_exp(reps=0)

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            small_cpu_exp(node_name="Summit")

    def test_target_spec(self):
        assert small_cpu_exp().target_spec.name == "AMD EPYC 7A53"
        gpu = wombat_gpu_experiment(Precision.FP64)
        assert gpu.target_spec.name == "NVIDIA A100"

    def test_effective_threads_defaults_to_cores(self):
        e = small_cpu_exp(threads=None)
        assert e.effective_threads == 64

    def test_threads_meaningless_on_gpu(self):
        with pytest.raises(ExperimentError):
            wombat_gpu_experiment(Precision.FP64).effective_threads

    def test_with_sizes(self):
        e = small_cpu_exp().with_sizes((128,))
        assert e.sizes == (128,)


class TestRunner:
    def test_cpu_measurement_reps(self):
        exp = small_cpu_exp()
        m = run_measurement(model_by_name("c-openmp"), exp,
                            MatrixShape.square(256))
        assert m.supported
        assert len(m.times_s) == exp.reps + exp.warmup
        assert len(m.kernel_times) == exp.reps
        assert m.gflops > 0

    def test_warmup_is_slowest_for_jit_models(self):
        """The excluded first repetition carries JIT compilation."""
        exp = small_cpu_exp(models=("julia",))
        m = run_measurement(model_by_name("julia"), exp, MatrixShape.square(256))
        assert m.times_s[0] > max(m.kernel_times)

    def test_unsupported_cell(self):
        exp = wombat_gpu_experiment(Precision.FP64, sizes=(256,),
                                    models=("numba",))
        exp2 = Experiment(**{**exp.__dict__, "node_name": "Crusher"})
        m = run_measurement(model_by_name("numba"), exp2, MatrixShape.square(256))
        assert not m.supported
        assert "deprecated" in m.note
        with pytest.raises(ExperimentError):
            m.seconds

    def test_run_experiment_full_grid(self):
        exp = small_cpu_exp()
        rs = run_experiment(exp)
        assert len(rs.measurements) == len(exp.models) * len(exp.sizes)
        assert rs.models() == list(exp.models)
        assert rs.sizes() == sorted(exp.sizes)

    def test_determinism(self):
        """Same seed, same samples — bit-for-bit."""
        exp = small_cpu_exp()
        a = run_experiment(exp)
        b = run_experiment(exp)
        for ma, mb in zip(a.measurements, b.measurements):
            assert ma.times_s == mb.times_s

    def test_seed_changes_samples(self):
        a = run_experiment(small_cpu_exp(seed=1))
        b = run_experiment(small_cpu_exp(seed=2))
        assert a.measurements[0].times_s != b.measurements[0].times_s

    def test_gpu_trace_corroboration(self):
        """The nvprof check: kernel events == reps + warmup, plus both
        transfer directions."""
        exp = wombat_gpu_experiment(Precision.FP64, sizes=(1024,),
                                    models=("cuda",))
        prof = Profiler()
        rs = run_experiment(exp, profiler=prof)
        assert rs.measurements[0].supported
        assert prof.count(EventKind.KERNEL) == exp.reps + exp.warmup
        assert prof.count(EventKind.MEMCPY_H2D) == 1
        assert prof.count(EventKind.MEMCPY_D2H) == 1

    def test_jit_trace_event(self):
        exp = small_cpu_exp(models=("numba",))
        prof = Profiler()
        run_experiment(exp, profiler=prof)
        assert prof.count(EventKind.JIT_COMPILE) >= 1


class TestWarmupComposition:
    """Regression tests for the H2D double-count (see EXPERIMENTS.md,
    "Warm-up accounting"): the warm-up repetition carries JIT plus the
    one-time H2D copy in kernel-only mode, but in end-to-end mode every
    repetition already pays the full transfer, so the warm-up must add
    JIT only — H2D used to be charged a second time there."""

    def _components(self, exp, shape):
        from repro.gpu.transfer import gemm_transfer_estimate
        from repro.gpu.warp_sim import simulate_gpu_kernel
        from repro.sim.variability import VariabilityModel

        model = model_by_name("cuda")
        spec = exp.target_spec
        low = model.lower_gpu(spec, exp.precision)
        timing = simulate_gpu_kernel(low.kernel, low.launch, spec, shape,
                                     low.profile)
        transfers = gemm_transfer_estimate(spec, shape, exp.precision)
        jit = model.productivity(exp.device).jit_warmup_seconds
        noise = VariabilityModel.for_node(exp.node_name, seed=exp.seed)
        key = f"{exp.exp_id}:cuda:{shape}:{exp.precision.value}"
        return model, timing, transfers, jit, noise, key

    def test_kernel_only_warmup_carries_one_h2d(self):
        exp = wombat_gpu_experiment(Precision.FP64, sizes=(512,),
                                    models=("cuda",))
        shape = MatrixShape.square(512)
        model, timing, transfers, jit, noise, key = self._components(exp, shape)
        m = run_measurement(model, exp, shape)
        expected = noise.samples(timing.total_seconds, key,
                                 exp.reps + exp.warmup,
                                 warmup_extra_seconds=jit + transfers.h2d_seconds)
        assert m.times_s == tuple(expected)

    def test_end_to_end_warmup_adds_no_second_h2d(self):
        base = wombat_gpu_experiment(Precision.FP64, sizes=(512,),
                                     models=("cuda",))
        exp = Experiment(**{**base.__dict__, "include_transfers": True})
        shape = MatrixShape.square(512)
        model, timing, transfers, jit, noise, key = self._components(exp, shape)
        m = run_measurement(model, exp, shape)
        nominal = timing.total_seconds + transfers.total_seconds
        expected = noise.samples(nominal, key, exp.reps + exp.warmup,
                                 warmup_extra_seconds=jit)
        assert m.times_s == tuple(expected)

    def test_h2d_charged_exactly_once_per_mode(self):
        """Subtracting the two modes' warm-up samples isolates the transfer
        charge: it must be jitter0 * total - h2d, never total alone."""
        base = wombat_gpu_experiment(Precision.FP64, sizes=(512,),
                                     models=("cuda",))
        e2e = Experiment(**{**base.__dict__, "include_transfers": True})
        shape = MatrixShape.square(512)
        model, timing, transfers, jit, noise, key = self._components(base, shape)
        m_base = run_measurement(model, base, shape)
        m_e2e = run_measurement(model, e2e, shape)
        jitter0 = (m_base.times_s[0] - jit - transfers.h2d_seconds) \
            / timing.total_seconds
        delta = m_e2e.times_s[0] - m_base.times_s[0]
        expected_delta = jitter0 * transfers.total_seconds \
            - transfers.h2d_seconds
        assert delta == pytest.approx(expected_delta, rel=1e-12)


class TestResults:
    def test_series_skips_unsupported(self):
        exp = wombat_gpu_experiment(Precision.FP64, sizes=(512, 1024))
        exp = Experiment(**{**exp.__dict__, "node_name": "Crusher",
                            "exp_id": "t-gpu",
                            "models": ("hip", "numba")})
        rs = run_experiment(exp)
        xs, ys = rs.series("numba")
        assert xs == [] and ys == []
        xs, ys = rs.series("hip")
        assert xs == [512, 1024]

    def test_efficiency_series_and_mean(self):
        rs = run_experiment(small_cpu_exp())
        es = rs.efficiency_series("julia", "c-openmp")
        assert len(es) == 2
        assert all(0.3 < e < 1.2 for e in es)
        assert rs.mean_efficiency("julia", "c-openmp") == pytest.approx(
            sum(es) / len(es))

    def test_mean_efficiency_none_when_unsupported(self):
        exp = Experiment(
            exp_id="t", title="t", node_name="Crusher", device=DeviceKind.GPU,
            precision=Precision.FP64, models=("hip", "numba"), sizes=(512,))
        rs = run_experiment(exp)
        assert rs.mean_efficiency("numba", "hip") is None

    def test_to_rows(self):
        rs = run_experiment(small_cpu_exp())
        rows = rs.to_rows()
        assert len(rows) == 4
        assert {"experiment", "model", "size", "gflops"} <= set(rows[0])

    def test_cell_lookup_missing(self):
        rs = run_experiment(small_cpu_exp())
        with pytest.raises(KeyError):
            rs.cell("julia", 9999)


class TestNonSquareKeys:
    """Regression tests for the shape-key collision: E17-style sweeps mix
    shapes with equal m but different n/k, and ``cell``/``series`` used to
    silently return the first m-match."""

    def _non_square_rs(self):
        exp = small_cpu_exp(models=("c-openmp",), sizes=(512,))
        model = model_by_name("c-openmp")
        wide = MatrixShape(512, 2048, 128)
        deep = MatrixShape(512, 128, 2048)
        rs = ResultSet(exp)
        rs.add(run_measurement(model, exp, wide))
        rs.add(run_measurement(model, exp, deep))
        return rs, wide, deep

    def test_cell_by_shape_distinguishes_colliding_m(self):
        rs, wide, deep = self._non_square_rs()
        assert rs.cell_by_shape("c-openmp", wide).shape == wide
        assert rs.cell_by_shape("c-openmp", deep).shape == deep
        assert rs.cell_by_shape("c-openmp", wide).times_s != \
            rs.cell_by_shape("c-openmp", deep).times_s

    def test_integer_key_is_ambiguous_on_collision(self):
        rs, _, _ = self._non_square_rs()
        with pytest.raises(KeyError, match="ambiguous"):
            rs.cell("c-openmp", 512)

    def test_cell_accepts_full_shape(self):
        rs, wide, _ = self._non_square_rs()
        assert rs.cell("c-openmp", wide).shape == wide

    def test_series_covers_every_shape(self):
        rs, _, _ = self._non_square_rs()
        xs, ys = rs.series("c-openmp")
        assert xs == [512, 512]
        assert len(set(ys)) == 2

    def test_shapes_listing(self):
        rs, wide, deep = self._non_square_rs()
        assert rs.shapes() == sorted([wide, deep],
                                     key=lambda s: (s.m, s.n, s.k))

    def test_square_sweep_api_unchanged(self):
        rs = run_experiment(small_cpu_exp())
        assert rs.sizes() == [256, 512]
        m = rs.cell("c-openmp", 256)
        assert m.shape == MatrixShape.square(256)
        xs, _ = rs.series("c-openmp")
        assert xs == [256, 512]

    def test_efficiency_series_pairs_by_shape(self):
        exp = small_cpu_exp(sizes=(512,))
        wide = MatrixShape(512, 2048, 128)
        deep = MatrixShape(512, 128, 2048)
        rs = ResultSet(exp)
        for name in ("c-openmp", "julia"):
            model = model_by_name(name)
            for shape in (wide, deep):
                rs.add(run_measurement(model, exp, shape))
        es = rs.efficiency_series("julia", "c-openmp")
        assert len(es) == 2
        expected = [
            rs.cell_by_shape("julia", s).gflops
            / rs.cell_by_shape("c-openmp", s).gflops
            for s in rs.shapes()
        ]
        assert es == expected


class TestReport:
    def test_ascii_table_alignment(self):
        out = ascii_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]

    def test_ascii_chart_renders_all_series(self):
        out = ascii_chart({"one": ([1, 2, 3], [1.0, 2.0, 3.0]),
                           "two": ([1, 2, 3], [3.0, 2.0, 1.0])})
        assert "one" in out and "two" in out
        assert "o" in out and "x" in out

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_render_result_set(self):
        rs = run_experiment(small_cpu_exp())
        out = render_result_set(rs)
        assert "C/OpenMP" in out and "Julia" in out
        assert "256" in out and "512" in out

    def test_render_marks_unsupported(self):
        exp = Experiment(
            exp_id="t", title="t", node_name="Crusher", device=DeviceKind.GPU,
            precision=Precision.FP64, models=("hip", "numba"), sizes=(512,))
        out = render_result_set(run_experiment(exp), chart=False)
        assert "n/a" in out
        assert "deprecated" in out
