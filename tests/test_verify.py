"""Tests for the reproduction-verification module."""

import pytest

from repro.core.types import Precision
from repro.harness import table3, verify_table3
from repro.harness.verify import CellCheck, E_TOLERANCE, VerificationReport


class TestCellCheck:
    def test_within_tolerance(self):
        c = CellCheck("x", 0.90, 0.93, 0.05)
        assert c.ok and c.delta == pytest.approx(0.03)

    def test_out_of_tolerance(self):
        assert not CellCheck("x", 0.90, 0.80, 0.05).ok

    def test_unsupported_matches_unsupported(self):
        c = CellCheck("x", None, None, 0.05)
        assert c.ok and c.delta is None

    def test_unsupported_mismatch(self):
        assert not CellCheck("x", None, 0.5, 0.05).ok
        assert not CellCheck("x", 0.5, None, 0.05).ok


class TestVerifyTable3:
    @pytest.fixture(scope="class")
    def report(self):
        return verify_table3(sizes=(1024, 4096, 8192, 16384))

    def test_reproduction_passes(self, report):
        assert report.passed, report.render()

    def test_check_count(self, report):
        # 3 models x 2 precisions x (4 platforms + 1 phi)
        assert len(report.checks) == 30

    def test_worst_delta_within_policy(self, report):
        assert report.worst_delta <= E_TOLERANCE

    def test_render_verdict(self, report):
        out = report.render()
        assert "REPRODUCED" in out
        assert "worst |delta|" in out

    def test_accepts_precomputed_table(self):
        t3 = table3((1024, 4096))
        report = verify_table3(computed=t3)
        assert isinstance(report, VerificationReport)
        assert report.checks

    def test_failure_detection(self):
        """A corrupted table must fail verification loudly."""
        t3 = table3((1024, 4096))
        for row in t3.rows:
            if row.model == "julia" and row.precision is Precision.FP64:
                # dataclass is frozen=False for Table3Result rows? rows are
                # frozen; rebuild a broken one
                import dataclasses
                broken = dataclasses.replace(
                    row, efficiencies={k: 0.1 for k in row.efficiencies},
                    phi=0.1)
                t3.rows[t3.rows.index(row)] = broken
                break
        report = verify_table3(computed=t3)
        assert not report.passed
        assert any("julia" in c.label for c in report.failures())
