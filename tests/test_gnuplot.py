"""Tests for the gnuplot export and config-driven CLI runs."""

import json
import os

import pytest

from repro.core.types import DeviceKind, Precision
from repro.harness import Experiment, run_experiment
from repro.harness.gnuplot import to_dat, to_gnuplot_script, write_gnuplot_bundle


@pytest.fixture(scope="module")
def results():
    exp = Experiment(
        exp_id="gp-test", title="gnuplot test", node_name="Crusher",
        device=DeviceKind.GPU, precision=Precision.FP64,
        models=("hip", "julia", "numba"), sizes=(512, 1024), reps=5)
    return run_experiment(exp)


class TestDat:
    def test_header_and_rows(self, results):
        dat = to_dat(results)
        lines = dat.strip().splitlines()
        assert lines[0].startswith("# size")
        assert len(lines) == 3  # header + 2 sizes

    def test_unsupported_as_missing_marker(self, results):
        dat = to_dat(results)
        # numba has no AMD backend: its column is '?' on every row
        for line in dat.strip().splitlines()[1:]:
            assert line.split()[-1] == "?"

    def test_numeric_columns_parse(self, results):
        for line in to_dat(results).strip().splitlines()[1:]:
            size, hip, julia, numba = line.split()
            assert int(size) in (512, 1024)
            assert float(hip) > 0 and float(julia) > 0


class TestScript:
    def test_series_per_model(self, results):
        script = to_gnuplot_script(results, "gp-test.dat")
        assert script.count("using 1:") == 3
        assert "set datafile missing '?'" in script
        assert "'HIP'" in script and "'Julia'" in script

    def test_custom_output(self, results):
        script = to_gnuplot_script(results, "x.dat", out_filename="fig.png")
        assert "set output 'fig.png'" in script


class TestBundle:
    def test_writes_both_files(self, results, tmp_path):
        dat, gp = write_gnuplot_bundle(results, str(tmp_path))
        assert os.path.exists(dat) and os.path.exists(gp)
        assert open(dat).read().startswith("# size")


class TestConfigRun:
    def test_cli_config_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        cfg = {"exp_id": "from-config", "node": "Crusher",
               "models": ["c-openmp"], "sizes": [256], "reps": 5}
        path = tmp_path / "exp.json"
        path.write_text(json.dumps(cfg))
        rc = main(["run", "--config", str(path), "--format", "csv"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "from-config,c-openmp,256" in out

    def test_cli_config_rejects_typo(self, tmp_path, capsys):
        from repro.cli import main
        from repro.errors import ExperimentError
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"exp_id": "x", "node": "Crusher",
                                    "models": ["julia"], "sises": [256]}))
        with pytest.raises(ExperimentError):
            main(["run", "--config", str(path)])
