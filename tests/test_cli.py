"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "9"])


class TestCommands:
    def test_machines(self, capsys):
        rc, out = run_cli(capsys, "machines")
        assert rc == 0
        assert "Crusher" in out and "Wombat" in out
        assert "MI250X" in out and "A100" in out

    def test_models_support_matrix(self, capsys):
        rc, out = run_cli(capsys, "models")
        assert rc == 0
        assert "Python/Numba" in out
        assert "~16" in out  # Julia's degraded FP16 on the AMD CPU

    def test_productivity(self, capsys):
        rc, out = run_cli(capsys, "productivity")
        assert rc == 0
        assert "divergence" in out and "Julia" in out

    def test_table_1_and_2(self, capsys):
        rc, out = run_cli(capsys, "table", "1")
        assert rc == 0 and "ArmClang22" in out
        rc, out = run_cli(capsys, "table", "2")
        assert rc == 0 and "hipcc" in out

    def test_table_3(self, capsys):
        rc, out = run_cli(capsys, "table", "3")
        assert rc == 0
        assert "Phi_M" in out

    def test_fig_4(self, capsys):
        rc, out = run_cli(capsys, "fig", "4", "--no-chart")
        assert rc == 0
        assert "Fig. 4" in out and "double" in out and "single" in out

    def test_fig_with_chart(self, capsys):
        rc, out = run_cli(capsys, "fig", "6")
        assert rc == 0
        assert "GFLOP/s vs matrix size" in out

    def test_custom_run(self, capsys):
        rc, out = run_cli(capsys, "run", "--node", "wombat",
                          "--device", "gpu", "--precision", "single",
                          "--models", "cuda,julia", "--sizes", "512,1024",
                          "--reps", "5")
        assert rc == 0
        assert "CUDA" in out and "Julia" in out

    def test_custom_run_cpu_threads(self, capsys):
        rc, out = run_cli(capsys, "run", "--node", "crusher",
                          "--models", "c-openmp", "--sizes", "256",
                          "--threads", "16")
        assert rc == 0
        assert "256" in out

    def test_run_json_format(self, capsys):
        import json
        rc, out = run_cli(capsys, "run", "--models", "c-openmp",
                          "--sizes", "256", "--format", "json")
        assert rc == 0
        data = json.loads(out)
        assert data["measurements"][0]["model"] == "c-openmp"

    def test_run_csv_format(self, capsys):
        rc, out = run_cli(capsys, "run", "--models", "c-openmp",
                          "--sizes", "256", "--format", "csv")
        assert rc == 0
        assert out.splitlines()[0].startswith("experiment,model")

    def test_kernel_command_cpu(self, capsys):
        rc, out = run_cli(capsys, "kernel", "julia")
        assert rc == 0
        assert "jki" not in out  # pseudo-code, not order string
        assert "parallel-threads" in out and "passes:" in out

    def test_kernel_command_gpu_shows_unroll(self, capsys):
        rc, out = run_cli(capsys, "kernel", "julia", "--device", "gpu",
                          "--target", "a100")
        assert rc == 0
        assert "unroll x2" in out
        rc, out = run_cli(capsys, "kernel", "cuda", "--device", "gpu")
        assert "unroll x4" in out

    def test_scaling_command(self, capsys):
        rc, out = run_cli(capsys, "scaling", "--model", "numba",
                          "--size", "1024", "--threads", "1,64")
        assert rc == 0
        assert "speedup" in out

    def test_roofline_command(self, capsys):
        rc, out = run_cli(capsys, "roofline", "--target", "a100",
                          "--size", "2048")
        assert rc == 0
        assert "ridge" in out

    def test_roofline_cpu_target(self, capsys):
        rc, out = run_cli(capsys, "roofline", "--target", "epyc-7a53",
                          "--size", "2048", "--models", "c-openmp,julia")
        assert rc == 0
        assert "C/OpenMP" in out

    def test_extension_model_usable_in_run(self, capsys):
        rc, out = run_cli(capsys, "run", "--models", "pyomp,numba",
                          "--sizes", "512")
        assert rc == 0
        assert "PyOMP" in out

    def test_run_efficiency_flag(self, capsys):
        rc, out = run_cli(capsys, "run", "--models", "c-openmp,julia",
                          "--sizes", "512,1024", "--efficiency", "c-openmp")
        assert rc == 0
        assert "efficiency vs C/OpenMP" in out and "mean e" in out

    def test_fig_efficiencies_flag(self, capsys):
        rc, out = run_cli(capsys, "fig", "7", "--no-chart", "--efficiencies")
        assert rc == 0
        assert "efficiency vs CUDA" in out

    def test_verify_command(self, capsys):
        rc, out = run_cli(capsys, "verify")
        assert rc == 0
        assert "verdict: REPRODUCED" in out

    def test_stream_command(self, capsys):
        rc, out = run_cli(capsys, "stream", "--target", "a100",
                          "--n", str(1 << 22))
        assert rc == 0
        assert "triad" in out and "CUDA" in out

    def test_stream_cpu_target(self, capsys):
        rc, out = run_cli(capsys, "stream", "--target", "ampere-altra",
                          "--n", str(1 << 22), "--models", "c-openmp,julia")
        assert rc == 0
        assert "Julia" in out

    def test_crossover_command(self, capsys):
        rc, out = run_cli(capsys, "crossover", "--node", "crusher",
                          "--model", "julia", "--precision", "half",
                          "--sizes", "512,1024")
        assert rc == 0
        assert "winner(e2e)" in out

    def test_report_command_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        rc, out = run_cli(capsys, "report", "--out", str(out_file))
        assert rc == 0
        assert "report written" in out
        assert "verdict: REPRODUCED" in out_file.read_text()

    def test_lint_command_clean(self, capsys):
        rc, out = run_cli(capsys, "lint")
        assert rc == 0
        assert "0 errors" in out
        assert "unsupported combinations skipped" in out

    def test_lint_command_filters(self, capsys):
        rc, out = run_cli(capsys, "lint", "--models", "julia",
                          "--device", "cpu", "--precision", "fp64")
        assert rc == 0
        assert "linted 2 lowerings" in out


class TestCacheCommands:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        from repro.harness.engine import reset_default_engine
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_engine()
        yield
        reset_default_engine()

    def test_cache_stats_smoke(self, capsys):
        rc, out = run_cli(capsys, "cache", "stats")
        assert rc == 0
        assert "cache dir:" in out and "entries:" in out
        assert "hits" in out and "misses" in out

    def test_run_populates_cache_then_clear(self, capsys):
        rc, _ = run_cli(capsys, "run", "--models", "c-openmp",
                        "--sizes", "256")
        assert rc == 0
        rc, out = run_cli(capsys, "cache", "stats")
        assert rc == 0 and "entries:    1" in out
        rc, out = run_cli(capsys, "cache", "clear")
        assert rc == 0 and "cleared 1" in out
        rc, out = run_cli(capsys, "cache", "stats")
        assert "entries:    0" in out

    def test_cache_dir_flag(self, capsys, tmp_path):
        rc, out = run_cli(capsys, "cache", "stats",
                          "--dir", str(tmp_path / "elsewhere"))
        assert rc == 0
        assert str(tmp_path / "elsewhere") in out

    def test_run_engine_flags(self, capsys):
        rc, out = run_cli(capsys, "run", "--models", "c-openmp",
                          "--sizes", "256", "--no-cache", "--serial",
                          "--engine-stats")
        assert rc == 0
        assert "1 cells" in out and "[sim]" in out and "serial" in out
        # the stats block carries the full header: counts, wall clock,
        # execution mode, and the per-cell timing line
        assert "sweep cli-run: 1 cells (0 cached, 1 executed)" in out
        assert "ms wall" in out
        assert "c-openmp @256x256x256" in out

    def test_run_engine_stats_shows_cache_hits(self, capsys):
        run_cli(capsys, "run", "--models", "c-openmp", "--sizes", "256")
        rc, out = run_cli(capsys, "run", "--models", "c-openmp",
                          "--sizes", "256", "--engine-stats")
        assert rc == 0
        assert "[cache]" in out
        assert "(1 cached, 0 executed)" in out


class TestResilienceFlags:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        from repro.harness.engine import (
            reset_default_engine,
            reset_default_run_options,
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_engine()
        reset_default_run_options()
        yield
        reset_default_engine()
        reset_default_run_options()

    def test_faulty_run_degrades_and_exits_zero(self, capsys):
        rc, out = run_cli(capsys, "run", "--models", "c-openmp,julia",
                          "--sizes", "256,512", "--no-cache",
                          "--faults", "always=julia@512")
        assert rc == 0
        assert "FAIL" in out
        assert "DEGRADED: 1 of 4 cells failed" in out

    def test_fail_fast_exits_nonzero(self, capsys):
        rc = main(["run", "--models", "c-openmp,julia",
                   "--sizes", "256,512", "--no-cache",
                   "--faults", "always=julia@512", "--fail-fast"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "aborted" in captured.err

    def test_retries_recover_transient_faults(self, capsys):
        rc, clean = run_cli(capsys, "run", "--models", "c-openmp,julia",
                            "--sizes", "256,512", "--no-cache")
        rc2, noisy = run_cli(capsys, "run", "--models", "c-openmp,julia",
                             "--sizes", "256,512", "--no-cache",
                             "--faults", "rate=0.4,seed=0", "--retries", "7")
        assert rc == rc2 == 0
        assert noisy == clean  # recovered run renders identically

    def test_engine_stats_show_attempts(self, capsys):
        rc, out = run_cli(capsys, "run", "--models", "c-openmp,julia",
                          "--sizes", "256,512", "--no-cache", "--serial",
                          "--engine-stats",
                          "--faults", "rate=0.4,seed=0", "--retries", "7")
        assert rc == 0
        assert "attempts" in out and "faults" in out

    def test_bad_fault_spec_is_usage_error(self, capsys):
        rc = main(["run", "--models", "c-openmp", "--sizes", "256",
                   "--faults", "nonsense=1"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "unknown fault spec key" in captured.err
