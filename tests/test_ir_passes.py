"""Tests for the optimisation passes and the pass pipeline."""

import pytest

from repro.core.types import Layout, MatrixShape, Precision
from repro.errors import IRVerificationError
from repro.ir import builder
from repro.ir.nodes import LoadOp, ParallelKind
from repro.ir.passes import (
    ElideBoundsChecks,
    InsertBoundsChecks,
    InterchangeLoops,
    LoopInvariantMotion,
    PassPipeline,
    SetFastMath,
    UnrollInnerLoop,
    VectorizeInnerLoop,
    vectorization_legal,
)


def _unhoisted_c_kernel():
    """The C kernel with hoisting stripped (what LICM should restore)."""
    k = builder.build_gemm("raw", Precision.FP64, "ikj", Layout.ROW_MAJOR,
                           hoist_invariant=False)
    return k


class TestLICM:
    def test_hoists_invariant_load(self):
        k = _unhoisted_c_kernel()
        assert all(ld.hoisted_above is None for ld in k.body.loads)
        out = LoopInvariantMotion().run(k)
        hoists = {ld.ref.array: ld.hoisted_above for ld in out.body.loads}
        assert hoists["A"] == "j"   # invariant in the inner j loop
        assert hoists["B"] is None
        assert hoists["C"] is None

    def test_idempotent(self):
        k = LoopInvariantMotion().run(_unhoisted_c_kernel())
        assert LoopInvariantMotion().run(k) == k

    def test_sinks_store_only_for_scalar_accum(self):
        rmw = _unhoisted_c_kernel()
        out = LoopInvariantMotion().run(rmw)
        assert out.body.stores[0].hoisted_above is None  # observable writes

        accum = builder.build_gemm("a", Precision.FP64, "ijk", Layout.ROW_MAJOR,
                                   hoist_invariant=False, scalar_accum=True)
        out = LoopInvariantMotion().run(accum)
        assert out.body.stores[0].hoisted_above == "k"


class TestUnroll:
    def test_sets_factor(self):
        k = UnrollInnerLoop(4).run(builder.c_openmp_cpu(Precision.FP64))
        assert k.inner.unroll == 4

    def test_rejects_zero(self):
        with pytest.raises(IRVerificationError):
            UnrollInnerLoop(0)

    def test_noop_when_same(self):
        k = UnrollInnerLoop(4).run(builder.c_openmp_cpu(Precision.FP64))
        assert UnrollInnerLoop(4).run(k) == k


class TestVectorize:
    def test_legal_on_independent_inner_loop(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        ok, why = vectorization_legal(k)
        assert ok, why
        assert VectorizeInnerLoop(4).run(k).inner.vector_width == 4

    def test_blocked_by_strict_fp_reduction(self):
        """A k-innermost scalar accumulation cannot vectorise without
        fastmath: reassociation is illegal."""
        k = builder.kokkos_cpu(Precision.FP64)
        ok, why = vectorization_legal(k)
        assert not ok and "fastmath" in why
        assert VectorizeInnerLoop(4).run(k).inner.vector_width == 1

    def test_fastmath_unblocks_reduction(self):
        k = SetFastMath(True).run(builder.kokkos_cpu(Precision.FP64))
        ok, _ = vectorization_legal(k)
        assert ok
        assert VectorizeInnerLoop(8).run(k).inner.vector_width == 8

    def test_blocked_by_inner_bounds_checks(self):
        """Julia without @inbounds: per-access guards kill vectorisation."""
        k = builder.build_gemm("jl", Precision.FP64, "jki", Layout.COL_MAJOR,
                               parallel_vars=("j",), bounds_checks=True)
        ok, why = vectorization_legal(k)
        assert not ok and "bounds" in why
        assert VectorizeInnerLoop(4).run(k).inner.vector_width == 1

    def test_force_overrides_legality(self):
        k = builder.kokkos_cpu(Precision.FP64)
        assert VectorizeInnerLoop(4, force=True).run(k).inner.vector_width == 4


class TestBoundsChecks:
    def test_insert_then_elide_roundtrip(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        checked = InsertBoundsChecks().run(k)
        assert checked.bounds_checked
        assert len(checked.body.guards) == 4  # 3 loads + 1 store
        clean = ElideBoundsChecks().run(checked)
        assert not clean.bounds_checked
        assert clean.body.guards == ()

    def test_elide_keeps_grid_guard(self):
        """The GPU range guard is control flow, not a safety check."""
        k = builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR)
        out = ElideBoundsChecks().run(k)
        assert len(out.body.guards) == 1


class TestInterchange:
    def test_permutes_and_rehoists(self):
        k = builder.c_openmp_cpu(Precision.FP64)  # ikj
        out = InterchangeLoops("ijk").run(k)
        assert out.loop_order == "ijk"
        out.verify()
        # hoisting recomputed for the new order: nothing is invariant in k
        hoists = {ld.ref.array: ld.hoisted_above for ld in out.body.loads}
        assert hoists["C"] == "k"  # C[i,j] invariant in new inner loop k

    def test_rejects_non_permutation(self):
        with pytest.raises(IRVerificationError):
            InterchangeLoops("iik").run(builder.c_openmp_cpu(Precision.FP64))

    def test_rejects_burying_parallel_loop(self):
        k = builder.c_openmp_cpu(Precision.FP64)  # i is the worksharing loop
        with pytest.raises(IRVerificationError):
            InterchangeLoops("kij").run(k)

    def test_rejects_hoisting_reduction_of_accumulator(self):
        k = builder.kokkos_cpu(Precision.FP64)  # scalar accum over k
        with pytest.raises(IRVerificationError):
            InterchangeLoops("ikj").run(k)

    def test_resets_unroll_and_vector(self):
        k = UnrollInnerLoop(4).run(builder.c_openmp_cpu(Precision.FP64))
        out = InterchangeLoops("ijk").run(k)
        assert out.inner.unroll == 1


class TestPipeline:
    def test_runs_in_order_and_verifies(self):
        pipe = PassPipeline([
            LoopInvariantMotion(),
            VectorizeInnerLoop(4),
            UnrollInnerLoop(4),
        ])
        k, records = pipe.run(_unhoisted_c_kernel())
        assert [r.name for r in records] == ["licm", "vectorize", "unroll"]
        assert k.inner.vector_width == 4 and k.inner.unroll == 4
        assert records[0].changed

    def test_describe(self):
        pipe = PassPipeline([SetFastMath(True), UnrollInnerLoop(2)])
        assert pipe.describe() == "fastmath -> unroll"
        assert PassPipeline().describe() == "(empty)"
