"""Tests for the GPU simulation stack: launch, occupancy, coalescing, waves."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import Layout, MatrixShape, Precision
from repro.errors import MachineModelError
from repro.gpu import (
    IssueProfile,
    LaunchConfig,
    analyze_coalescing,
    classify_kernel_bound,
    gemm_transfer_estimate,
    occupancy,
    paper_launch,
    simulate_gpu_kernel,
)
from repro.ir import builder
from repro.ir.passes import UnrollInnerLoop
from repro.machine import A100, MI250X


def gpu_kernel(precision=Precision.FP64, layout=Layout.ROW_MAJOR, unroll=4):
    k = builder.gpu_thread_per_element("g", precision, layout)
    return UnrollInnerLoop(unroll).run(k)


class TestLaunch:
    def test_paper_block_is_32x32(self):
        l = paper_launch()
        assert l.threads_per_block == 1024

    def test_grid_ceiling(self):
        l = LaunchConfig(32, 32, "j")
        assert l.grid(MatrixShape.square(100)) == (4, 4)
        assert l.total_blocks(MatrixShape.square(100)) == 16

    def test_active_fraction_with_remainder(self):
        l = LaunchConfig(32, 32, "j")
        frac = l.active_thread_fraction(MatrixShape.square(100))
        assert frac == pytest.approx(100 * 100 / (128 * 128))

    def test_axis_mapping(self):
        l = LaunchConfig(32, 8, "i")
        assert l.y_axis == "j"
        # x walks rows (M), y walks columns (N)
        assert l.grid(MatrixShape(64, 16, 8)) == (2, 2)

    def test_rejects_oversized_block(self):
        with pytest.raises(MachineModelError):
            LaunchConfig(64, 32)

    def test_rejects_bad_axis(self):
        with pytest.raises(MachineModelError):
            LaunchConfig(32, 32, "k")


class TestOccupancy:
    def test_paper_block_residency_a100(self):
        occ = occupancy(A100, 1024)
        assert occ.blocks_per_cu == 2      # 2048 threads / 1024 per block
        assert occ.warps_per_cu == 64
        assert occ.fraction(A100) == pytest.approx(1.0)

    def test_small_blocks_limited_by_block_slots(self):
        occ = occupancy(A100, 32)
        assert occ.blocks_per_cu == 32     # block-slot limit, not threads
        assert occ.fraction(A100) == pytest.approx(0.5)

    def test_wavefront_size_mi250x(self):
        occ = occupancy(MI250X, 1024)
        assert occ.warps_per_block == 16   # 1024 / 64-wide wavefronts

    def test_register_pressure_limits(self):
        rich = occupancy(A100, 256, registers_per_thread=32)
        poor = occupancy(A100, 256, registers_per_thread=255)
        assert poor.blocks_per_cu < rich.blocks_per_cu

    def test_rejects_unlaunchable(self):
        with pytest.raises(MachineModelError):
            occupancy(A100, 2048)


class TestCoalescing:
    def test_row_major_x_on_j_is_coalesced(self):
        """CUDA/HIP/Numba convention: x walks columns of row-major data."""
        rep = analyze_coalescing(gpu_kernel(), paper_launch("j"), A100,
                                 MatrixShape.square(512))
        pat = {a.array: a.pattern for a in rep.accesses if a.kind == "load"}
        assert pat["B"] == "coalesced"
        assert pat["A"] == "broadcast"

    def test_col_major_x_on_i_is_coalesced(self):
        """Julia convention: x walks rows of column-major data."""
        rep = analyze_coalescing(gpu_kernel(layout=Layout.COL_MAJOR),
                                 paper_launch("i"), A100,
                                 MatrixShape.square(512))
        pat = {a.array: a.pattern for a in rep.accesses if a.kind == "load"}
        assert pat["A"] == "coalesced"
        assert pat["B"] == "broadcast"

    def test_mismatched_mapping_strides(self):
        """The Kokkos/CUDA failure mode: x on j over column-major data."""
        rep = analyze_coalescing(gpu_kernel(layout=Layout.COL_MAJOR),
                                 paper_launch("j"), A100,
                                 MatrixShape.square(512))
        pat = {a.array: a.pattern for a in rep.accesses if a.kind == "load"}
        assert pat["B"] == "strided"

    def test_fp32_halves_coalesced_bytes(self):
        r64 = analyze_coalescing(gpu_kernel(Precision.FP64), paper_launch("j"),
                                 A100, MatrixShape.square(512))
        r32 = analyze_coalescing(gpu_kernel(Precision.FP32), paper_launch("j"),
                                 A100, MatrixShape.square(512))
        assert r32.bytes_per_warp_k_iter < r64.bytes_per_warp_k_iter

    def test_strided_bytes_precision_independent(self):
        r64 = analyze_coalescing(gpu_kernel(Precision.FP64, Layout.COL_MAJOR),
                                 paper_launch("j"), A100, MatrixShape.square(512))
        r32 = analyze_coalescing(gpu_kernel(Precision.FP32, Layout.COL_MAJOR),
                                 paper_launch("j"), A100, MatrixShape.square(512))
        strided64 = [a for a in r64.accesses if a.pattern == "strided"][0]
        strided32 = [a for a in r32.accesses if a.pattern == "strided"][0]
        assert strided64.transactions_per_warp == strided32.transactions_per_warp

    def test_store_hoisted_not_per_k(self):
        rep = analyze_coalescing(gpu_kernel(), paper_launch("j"), A100,
                                 MatrixShape.square(512))
        store = [a for a in rep.accesses if a.kind == "store"][0]
        assert not store.per_k_iteration


class TestWarpSim:
    SH = MatrixShape.square(8192)

    def test_vendor_fp32_nearly_doubles_fp64(self):
        """Sec. IV-B: the vendor CUDA path gains significantly at FP32."""
        t64 = simulate_gpu_kernel(gpu_kernel(Precision.FP64), paper_launch("j"),
                                  A100, self.SH)
        t32 = simulate_gpu_kernel(gpu_kernel(Precision.FP32), paper_launch("j"),
                                  A100, self.SH)
        ratio = t32.gflops(self.SH) / t64.gflops(self.SH)
        assert 1.6 < ratio < 2.0

    def test_issue_overhead_model_gains_little_at_fp32(self):
        """An issue-bound high-level model sees only a small FP32 gain."""
        profile = IssueProfile(issue_multiplier=1.2, extra_int_per_iter=100.0)
        t64 = simulate_gpu_kernel(gpu_kernel(Precision.FP64, unroll=1),
                                  paper_launch("j"), A100, self.SH, profile)
        t32 = simulate_gpu_kernel(gpu_kernel(Precision.FP32, unroll=1),
                                  paper_launch("j"), A100, self.SH, profile)
        ratio = t32.gflops(self.SH) / t64.gflops(self.SH)
        assert ratio < 1.1

    def test_unroll_reduces_time(self):
        """The CUDA.jl unroll-2 vs nvcc unroll-4 mechanism."""
        profile = IssueProfile(extra_int_per_iter=14.0)
        t2 = simulate_gpu_kernel(gpu_kernel(unroll=2), paper_launch("j"),
                                 A100, self.SH, profile)
        t4 = simulate_gpu_kernel(gpu_kernel(unroll=4), paper_launch("j"),
                                 A100, self.SH, profile)
        assert t4.total_seconds <= t2.total_seconds

    def test_launch_overhead_fraction_shrinks_with_size(self):
        """The constant overheads of Sec. IV-B matter only at small sizes."""
        tiny = MatrixShape.square(64)
        t_small = simulate_gpu_kernel(gpu_kernel(), paper_launch("j"), A100, tiny)
        t_big = simulate_gpu_kernel(gpu_kernel(), paper_launch("j"), A100, self.SH)
        frac_small = t_small.launch_seconds / t_small.total_seconds
        frac_big = t_big.launch_seconds / t_big.total_seconds
        assert frac_small > 0.2
        assert frac_big < 1e-3

    def test_mismatch_slower_than_matched(self):
        matched = simulate_gpu_kernel(gpu_kernel(layout=Layout.COL_MAJOR),
                                      paper_launch("i"), A100, self.SH)
        mismatched = simulate_gpu_kernel(gpu_kernel(layout=Layout.COL_MAJOR),
                                         paper_launch("j"), A100, self.SH)
        assert mismatched.total_seconds > 2 * matched.total_seconds

    def test_thrash_penalty_applies_above_threshold(self):
        profile = IssueProfile(thrash_threshold_bytes=1.0, thrash_factor=1.2)
        base = simulate_gpu_kernel(gpu_kernel(), paper_launch("j"), A100,
                                   self.SH)
        thrashed = simulate_gpu_kernel(gpu_kernel(), paper_launch("j"), A100,
                                       self.SH, profile)
        assert thrashed.kernel_seconds == pytest.approx(
            base.kernel_seconds * 1.2, rel=1e-6)

    def test_waves_scale_with_problem(self):
        small = simulate_gpu_kernel(gpu_kernel(), paper_launch("j"), A100,
                                    MatrixShape.square(2048))
        large = simulate_gpu_kernel(gpu_kernel(), paper_launch("j"), A100,
                                    MatrixShape.square(8192))
        assert large.waves == pytest.approx(16 * small.waves, rel=1e-6)

    @given(st.sampled_from([256, 512, 1024, 2048, 4096]))
    @settings(max_examples=10, deadline=None)
    def test_gflops_below_peak(self, n):
        sh = MatrixShape.square(n)
        t = simulate_gpu_kernel(gpu_kernel(), paper_launch("j"), A100, sh)
        assert 0 < t.gflops(sh) < A100.peak_gflops(Precision.FP64)


class TestBoundClassification:
    """Regression: the old tie test (``kernel_seconds == dram_seconds and
    dram_seconds > compute_seconds``) could never fire on a dead heat, so
    an exactly-DRAM-bound kernel kept its compute-side label."""

    def test_dead_heat_is_dram(self):
        assert classify_kernel_bound("issue", 1.0, 1.0) == "dram"

    def test_compute_dominant_keeps_issue_label(self):
        assert classify_kernel_bound("chain", 2.0, 1.0) == "chain"
        assert classify_kernel_bound("latency", 2.0, 1.0) == "latency"

    def test_dram_dominant(self):
        assert classify_kernel_bound("issue", 1.0, 2.0) == "dram"

    def test_simulated_label_matches_classifier(self):
        sh = MatrixShape.square(1024)
        t = simulate_gpu_kernel(gpu_kernel(), paper_launch("j"), A100, sh)
        assert t.bound in ("issue", "chain", "latency", "dram")
        if t.bound == "dram":
            assert t.kernel_seconds * A100.hbm_bandwidth_gbs * 1e9 >= t.dram_bytes


class TestTransfers:
    def test_transfer_estimate(self):
        sh = MatrixShape.square(4096)
        est = gemm_transfer_estimate(A100, sh, Precision.FP64)
        assert est.h2d_bytes == 2 * 4096 * 4096 * 8
        assert est.d2h_bytes == 4096 * 4096 * 8
        assert est.h2d_seconds > est.d2h_seconds

    def test_fp16_mixed_output(self):
        sh = MatrixShape.square(128)
        est = gemm_transfer_estimate(A100, sh, Precision.FP16)
        assert est.h2d_bytes == 2 * 128 * 128 * 2   # half inputs
        assert est.d2h_bytes == 128 * 128 * 4       # single output
