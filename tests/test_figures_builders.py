"""Direct tests for the figure experiment builders and edge paths not
covered by the headline reproduction suite."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import DeviceKind, MatrixShape, Precision
from repro.harness import PAPER_SIZES, QUICK_SIZES, run_measurement
from repro.harness.figures import (
    CPU_MODELS,
    crusher_cpu_experiment,
    crusher_gpu_experiment,
    fig4,
    wombat_cpu_experiment,
    wombat_gpu_experiment,
)
from repro.ir.pretty import render_kernel
from repro.models import model_by_name
from repro.stream import StreamKernel, simulate_stream
from repro.machine import A100, EPYC_7A53


class TestExperimentBuilders:
    def test_crusher_cpu_defaults(self):
        e = crusher_cpu_experiment(Precision.FP64)
        assert e.node_name == "Crusher" and e.threads == 64
        assert e.models == CPU_MODELS
        assert e.models[0] == "c-openmp"  # reference first

    def test_wombat_cpu_80_threads(self):
        e = wombat_cpu_experiment(Precision.FP32)
        assert e.threads == 80

    def test_gpu_experiments_models(self):
        assert "hip" in crusher_gpu_experiment(Precision.FP64).models
        assert "cuda" in wombat_gpu_experiment(Precision.FP64).models
        assert "numba" not in crusher_gpu_experiment(Precision.FP64).models

    def test_paper_sizes_match_artifact(self):
        """Fig. 9's sweep: 4096..20480; we prepend two smaller points."""
        assert PAPER_SIZES[0] == 1024
        assert PAPER_SIZES[-1] == 20480
        assert 4096 in PAPER_SIZES
        assert all(b > a for a, b in zip(PAPER_SIZES, PAPER_SIZES[1:]))

    def test_quick_subset_of_reasonable_range(self):
        assert set(QUICK_SIZES) <= set(range(1024, 20481))

    def test_figure_render_with_efficiencies(self):
        fig = fig4((1024,))
        out = fig.render(charts=False, efficiencies=True)
        assert "efficiency vs C/OpenMP" in out


class TestDegradedPath:
    def test_julia_fp16_on_epyc_runs_but_crawls(self):
        """'Very low performance on Crusher AMD CPUs (not reported)':
        the combination is supported=True/degraded and the harness runs
        it — an order of magnitude below the Arm FP16 path."""
        exp_amd = crusher_cpu_experiment(Precision.FP16, sizes=(512,))
        m_amd = run_measurement(model_by_name("julia"), exp_amd,
                                MatrixShape.square(512))
        assert m_amd.supported

        exp_arm = wombat_cpu_experiment(Precision.FP16, sizes=(512,),
                                        models=("julia",))
        m_arm = run_measurement(model_by_name("julia"), exp_arm,
                                MatrixShape.square(512))
        assert m_arm.gflops > 10 * m_amd.gflops


class TestPrettyEdgeCases:
    def test_bounds_checked_kernel_renders_guards(self):
        from repro.core.types import Layout
        from repro.ir import builder

        k = builder.build_gemm("guarded", Precision.FP64, "jki",
                               Layout.COL_MAJOR, parallel_vars=("j",),
                               bounds_checks=True)
        out = render_kernel(k)
        assert out.count("bounds-checked") == 1
        assert "guard on" in out

    def test_unvectorised_kernel_has_no_annotations(self):
        from repro.ir import builder

        out = render_kernel(builder.c_openmp_cpu(Precision.FP64))
        assert "vectorize" not in out and "unroll" not in out


class TestStreamProperties:
    @given(st.integers(14, 26))
    @settings(max_examples=12, deadline=None)
    def test_gpu_bandwidth_monotone_in_n(self, log_n):
        """Launch overhead amortises: bigger arrays, higher bandwidth."""
        small = simulate_stream("cuda", A100, StreamKernel.TRIAD, 1 << log_n)
        big = simulate_stream("cuda", A100, StreamKernel.TRIAD,
                              1 << (log_n + 1))
        assert big.bandwidth_gbs >= small.bandwidth_gbs * 0.999

    @given(st.sampled_from(list(StreamKernel)))
    @settings(max_examples=10, deadline=None)
    def test_cpu_bandwidth_positive_bounded(self, kernel):
        t = simulate_stream("c-openmp", EPYC_7A53, kernel, 1 << 24)
        assert 0 < t.bandwidth_gbs <= EPYC_7A53.total_bandwidth_gbs
