"""Tests for CPU scheduling: affinity, chunking, NUMA, thread simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExperimentError, MachineModelError
from repro.machine import AMPERE_ALTRA, EPYC_7A53
from repro.sched import (
    MemoryHome,
    PinPolicy,
    Schedule,
    ThreadWork,
    chunk_sizes,
    imbalance,
    memory_costs,
    place_threads,
    simulate_parallel_region,
    static_chunks,
)
from repro.sched.thread_sim import (
    FORK_JOIN_BASE_S,
    MIGRATION_COMPUTE_TAX,
    MIN_STREAM_RATE_BS,
)


class TestAffinity:
    def test_compact_consecutive(self):
        p = place_threads(EPYC_7A53, 8, PinPolicy.COMPACT)
        assert p.cores == tuple(range(8))
        assert p.pinned

    def test_spread_round_robins_domains(self):
        p = place_threads(EPYC_7A53, 8, PinPolicy.SPREAD)
        domains = [p.domain_of(EPYC_7A53, t) for t in range(8)]
        assert domains == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_none_is_unpinned(self):
        p = place_threads(EPYC_7A53, 4, PinPolicy.NONE)
        assert not p.pinned

    def test_compact_fills_domains_in_order(self):
        p = place_threads(EPYC_7A53, 64, PinPolicy.COMPACT)
        assert p.threads_per_domain(EPYC_7A53) == (16, 16, 16, 16)

    def test_oversubscription_wraps(self):
        p = place_threads(AMPERE_ALTRA, 160, PinPolicy.COMPACT)
        assert p.cores[80] == 0

    def test_rejects_zero_threads(self):
        with pytest.raises(MachineModelError):
            place_threads(EPYC_7A53, 0, PinPolicy.COMPACT)


class TestChunking:
    def test_even_split(self):
        assert chunk_sizes(64, 4) == [16, 16, 16, 16]

    def test_remainder_goes_first(self):
        assert chunk_sizes(10, 4) == [3, 3, 2, 2]

    def test_static_chunks_partition(self):
        chunks = static_chunks(100, 7)
        assert chunks[0][0] == 0 and chunks[-1][1] == 100
        covered = sum(b - a for a, b in chunks)
        assert covered == 100

    def test_more_threads_than_iterations(self):
        sizes = chunk_sizes(3, 8)
        assert sum(sizes) == 3
        assert sizes.count(0) == 5

    def test_imbalance_even_is_one(self):
        assert imbalance(64, 64) == pytest.approx(1.0)

    def test_imbalance_worst_case(self):
        # 65 iterations on 64 threads: one thread does double work
        assert imbalance(65, 64) == pytest.approx(2 / (65 / 64), rel=1e-9)

    def test_rejects_bad_args(self):
        with pytest.raises(ExperimentError):
            static_chunks(10, 0)

    @given(st.integers(0, 100000), st.integers(1, 128))
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, trip, threads):
        sizes = chunk_sizes(trip, threads)
        assert sum(sizes) == trip
        assert len(sizes) == threads
        assert max(sizes) - min(sizes) <= 1


class TestNUMACosts:
    def test_single_domain_no_remote(self):
        p = place_threads(AMPERE_ALTRA, 80, PinPolicy.COMPACT)
        costs = memory_costs(AMPERE_ALTRA, p)
        assert all(c.remote_fraction == 0.0 for c in costs)
        assert all(c.bandwidth_inflation == 1.0 for c in costs)

    def test_interleaved_four_domains(self):
        p = place_threads(EPYC_7A53, 64, PinPolicy.COMPACT)
        costs = memory_costs(EPYC_7A53, p, MemoryHome.INTERLEAVED)
        assert all(c.remote_fraction == pytest.approx(0.75) for c in costs)
        assert all(c.bandwidth_inflation > 1.0 for c in costs)

    def test_local_home_pinned_is_free(self):
        p = place_threads(EPYC_7A53, 64, PinPolicy.COMPACT)
        costs = memory_costs(EPYC_7A53, p, MemoryHome.LOCAL)
        assert all(c.remote_fraction == 0.0 for c in costs)

    def test_serial_node0_hurts_other_domains(self):
        p = place_threads(EPYC_7A53, 64, PinPolicy.COMPACT)
        costs = memory_costs(EPYC_7A53, p, MemoryHome.SERIAL_NODE0)
        assert costs[0].remote_fraction == 0.0       # thread on domain 0
        assert costs[-1].remote_fraction == 1.0      # thread on domain 3


def _work(threads, comp=1e-3, traffic=0.0):
    return [ThreadWork(t, comp, traffic) for t in range(threads)]


class TestThreadSim:
    def test_balanced_compute_bound(self):
        p = place_threads(EPYC_7A53, 64, PinPolicy.COMPACT)
        r = simulate_parallel_region(EPYC_7A53, p, _work(64, comp=1e-3))
        # makespan = per-thread compute + fork/join
        assert r.total_seconds == pytest.approx(1e-3 + r.fork_join_seconds)
        assert r.imbalance == pytest.approx(1.0)

    def test_imbalanced_chunk_sets_pace(self):
        p = place_threads(EPYC_7A53, 2, PinPolicy.COMPACT)
        work = [ThreadWork(0, 2e-3, 0.0), ThreadWork(1, 1e-3, 0.0)]
        r = simulate_parallel_region(EPYC_7A53, p, work)
        assert r.busy_seconds == pytest.approx(2e-3)
        assert r.imbalance > 1.0

    def test_memory_bound_region_limited_by_bandwidth(self):
        p = place_threads(EPYC_7A53, 64, PinPolicy.COMPACT)
        per_thread_bytes = 1e9 / 64
        r = simulate_parallel_region(
            EPYC_7A53, p, _work(64, comp=1e-6, traffic=per_thread_bytes))
        # 1 GB inflated by NUMA (x1.61) over 205 GB/s aggregate
        inflated = 1e9 * (1.0 + 0.75 * (1 / 0.55 - 1))
        expected = inflated / (205.0 * 1e9)
        assert r.busy_seconds == pytest.approx(expected, rel=0.05)

    def test_unpinned_pays_migration_tax_on_numa(self):
        """The Numba mechanism: unpinned threads on the 4-domain EPYC."""
        pinned = place_threads(EPYC_7A53, 64, PinPolicy.COMPACT)
        unpinned = place_threads(EPYC_7A53, 64, PinPolicy.NONE)
        rp = simulate_parallel_region(EPYC_7A53, pinned, _work(64))
        ru = simulate_parallel_region(EPYC_7A53, unpinned, _work(64))
        assert ru.busy_seconds == pytest.approx(
            rp.busy_seconds * MIGRATION_COMPUTE_TAX)

    def test_unpinned_free_on_single_domain(self):
        """...but costs nothing on Wombat's single-NUMA Altra."""
        pinned = place_threads(AMPERE_ALTRA, 80, PinPolicy.COMPACT)
        unpinned = place_threads(AMPERE_ALTRA, 80, PinPolicy.NONE)
        rp = simulate_parallel_region(AMPERE_ALTRA, pinned, _work(80))
        ru = simulate_parallel_region(AMPERE_ALTRA, unpinned, _work(80))
        assert ru.busy_seconds == pytest.approx(rp.busy_seconds)

    def test_oversubscription_serialises(self):
        p = place_threads(AMPERE_ALTRA, 160, PinPolicy.COMPACT)
        r = simulate_parallel_region(AMPERE_ALTRA, p, _work(160, comp=1e-3))
        assert r.busy_seconds == pytest.approx(2e-3)

    def test_work_count_must_match(self):
        p = place_threads(EPYC_7A53, 4, PinPolicy.COMPACT)
        with pytest.raises(ValueError):
            simulate_parallel_region(EPYC_7A53, p, _work(3))

    def test_slow_compute_demand_cap_is_a_rate(self):
        """Regression: the demand-cap floor used to be ``max(rate, bytes)``,
        so a slow-compute thread (comp > 1 s) claimed a channel share equal
        to its byte *count* and starved memory-bound peers.  The floor is a
        rate (MIN_STREAM_RATE_BS); the hog gets everything else."""
        p = place_threads(AMPERE_ALTRA, 2, PinPolicy.COMPACT)
        cap = AMPERE_ALTRA.numa[0].local_bandwidth_gbs * 1e9
        slow = ThreadWork(0, 100.0, 10e9)   # natural rate 0.1 GB/s
        hog = ThreadWork(1, 1e-6, 50e9)     # memory bound, uncapped
        r = simulate_parallel_region(AMPERE_ALTRA, p, [slow, hog])
        expected = 50e9 / (cap - MIN_STREAM_RATE_BS)
        assert r.per_thread_seconds[1] == pytest.approx(expected, rel=1e-6)

    def test_demand_floor_applies_per_domain_path(self):
        """Same regression on the interleaved multi-domain path: the
        per-domain cap used to be floored at the per-domain byte count."""
        p = place_threads(EPYC_7A53, 2, PinPolicy.COMPACT)
        domains = EPYC_7A53.numa_domains
        # both threads sit in domain 0; interleaving spreads their traffic
        slow = ThreadWork(0, 100.0, 10e9)
        hog = ThreadWork(1, 1e-6, 50e9)
        r = simulate_parallel_region(EPYC_7A53, p, [slow, hog])
        costs = memory_costs(EPYC_7A53, p, MemoryHome.INTERLEAVED)
        cap = EPYC_7A53.numa[0].local_bandwidth_gbs * 1e9
        hog_bytes = 50e9 * costs[1].bandwidth_inflation / domains
        expected = hog_bytes / (cap - MIN_STREAM_RATE_BS / domains)
        assert r.per_thread_seconds[1] == pytest.approx(expected, rel=1e-6)

    def test_single_thread_region_pays_base_fork_join_only(self):
        """Regression: log2(max(2, threads)) billed a 1-thread region for a
        2-thread tree barrier."""
        p = place_threads(EPYC_7A53, 1, PinPolicy.COMPACT)
        r = simulate_parallel_region(EPYC_7A53, p, _work(1))
        assert r.fork_join_seconds == FORK_JOIN_BASE_S

    def test_fork_join_grows_with_threads(self):
        p2 = place_threads(EPYC_7A53, 2, PinPolicy.COMPACT)
        p64 = place_threads(EPYC_7A53, 64, PinPolicy.COMPACT)
        r2 = simulate_parallel_region(EPYC_7A53, p2, _work(2))
        r64 = simulate_parallel_region(EPYC_7A53, p64, _work(64))
        assert r64.fork_join_seconds > r2.fork_join_seconds
