"""Smoke-run every example script so the examples can never rot.

Each example runs in a subprocess with a generous timeout and must exit
cleanly and print its signature content.  The slowest example is capped
by shrinking its default work through the environment-free CLI-less
entry points where possible; where not, the timeout does the job.
"""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO, "examples")

CASES = [
    ("quickstart.py", "Performance efficiency vs C/OpenMP"),
    ("portability_study.py", "worst efficiency deviation"),
    ("custom_kernel_tuning.py", "Reality check"),
    ("gpu_profile_trace.py", "profiler summary"),
    ("numa_pinning_clinic.py", "first-touch pathology"),
    ("device_placement.py", "crossover"),
    ("memory_bandwidth_stream.py", "Measured on this host"),
    ("crash_and_resume.py", "byte-identical to the reference"),
    ("overload_retry.py", "the key never ran it twice"),
]


@pytest.mark.parametrize("script,marker", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, marker):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script)],
        capture_output=True, text=True, timeout=420,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout, (
        f"{script} output missing {marker!r}; got:\n{proc.stdout[-1000:]}")


def test_every_example_covered():
    """A new example must be added to CASES (and thus smoke-tested)."""
    present = {f for f in os.listdir(EXAMPLES) if f.endswith(".py")}
    covered = {c[0] for c in CASES}
    assert present == covered, present.symmetric_difference(covered)
