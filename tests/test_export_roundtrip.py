"""Round-trip tests for the export schema (v2) and its v1 legacy loader."""

import json

import pytest

from repro.core.types import DeviceKind, MatrixShape, Precision
from repro.errors import ExperimentError
from repro.harness import (
    Experiment,
    ResultSet,
    run_experiment,
    run_measurement,
)
from repro.harness.export import (
    SCHEMA_VERSION,
    measurement_from_dict,
    measurement_to_dict,
    result_set_from_dict,
    result_set_from_json,
    result_set_to_csv,
    result_set_to_dict,
    result_set_to_json,
)
from repro.models import model_by_name


def cpu_exp(**kw):
    defaults = dict(
        exp_id="exp-rt", title="round trip", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=("c-openmp", "julia"), sizes=(256, 512), threads=64, reps=5,
    )
    defaults.update(kw)
    return Experiment(**defaults)


class TestRoundTrip:
    def test_dict_round_trip_reconstructs_everything(self):
        rs = run_experiment(cpu_exp())
        loaded = result_set_from_dict(result_set_to_dict(rs))
        assert loaded.experiment == rs.experiment
        assert loaded.measurements == rs.measurements

    def test_json_round_trip_is_byte_identical(self):
        rs = run_experiment(cpu_exp())
        text = result_set_to_json(rs)
        assert result_set_to_json(result_set_from_json(text)) == text

    def test_gpu_round_trip_with_unsupported_cell(self):
        exp = Experiment(
            exp_id="exp-rt-gpu", title="t", node_name="Crusher",
            device=DeviceKind.GPU, precision=Precision.FP64,
            models=("hip", "numba"), sizes=(512,))
        rs = run_experiment(exp)
        loaded = result_set_from_json(result_set_to_json(rs))
        assert loaded.measurements == rs.measurements
        numba = loaded.cell("numba", 512)
        assert not numba.supported and numba.times_s == ()

    def test_non_square_shapes_survive(self):
        exp = cpu_exp(models=("c-openmp",), sizes=(512,))
        model = model_by_name("c-openmp")
        wide = MatrixShape(512, 2048, 128)
        deep = MatrixShape(512, 128, 2048)
        rs = ResultSet(exp)
        rs.add(run_measurement(model, exp, wide))
        rs.add(run_measurement(model, exp, deep))
        loaded = result_set_from_dict(result_set_to_dict(rs))
        assert [m.shape for m in loaded.measurements] == [wide, deep]
        assert loaded.measurements == rs.measurements

    def test_measurement_precision_is_per_cell(self):
        """A cell whose precision differs from the experiment's survives."""
        exp = cpu_exp(models=("julia",), sizes=(256,))
        model = model_by_name("julia")
        fp32_exp = cpu_exp(models=("julia",), sizes=(256,),
                           precision=Precision.FP32)
        m = run_measurement(model, fp32_exp, MatrixShape.square(256))
        rs = ResultSet(exp)
        rs.add(m)
        loaded = result_set_from_dict(result_set_to_dict(rs))
        assert loaded.measurements[0].precision is Precision.FP32

    def test_include_transfers_round_trips(self):
        exp = Experiment(
            exp_id="exp-rt-tx", title="t", node_name="Wombat",
            device=DeviceKind.GPU, precision=Precision.FP64,
            models=("cuda",), sizes=(512,), include_transfers=True)
        loaded = result_set_from_dict(result_set_to_dict(run_experiment(exp)))
        assert loaded.experiment.include_transfers is True


class TestMeasurementDict:
    def test_schema_fields_present(self):
        rs = run_experiment(cpu_exp(models=("julia",), sizes=(256,)))
        data = measurement_to_dict(rs.measurements[0])
        assert data["precision"] == "fp64"
        assert data["shape"] == {"m": 256, "n": 256, "k": 256}
        assert data["size"] == 256  # v1 compatibility field

    def test_round_trip_single_measurement(self):
        rs = run_experiment(cpu_exp(models=("julia",), sizes=(256,)))
        m = rs.measurements[0]
        assert measurement_from_dict(measurement_to_dict(m)) == m


class TestLegacySchema:
    def _v1_doc(self):
        return {
            "schema": 1,
            "experiment": {
                "id": "legacy", "title": "v1 doc", "node": "Crusher",
                "device": "cpu", "precision": "fp32",
                "models": ["c-openmp"], "sizes": [256],
                "threads": 64, "reps": 5, "warmup": 1, "seed": 7,
            },
            "measurements": [{
                "model": "c-openmp", "display": "C/OpenMP", "size": 256,
                "supported": True, "note": "", "bound": "compute",
                "times_s": [0.002, 0.001, 0.001, 0.001, 0.001, 0.001],
                "warmup_count": 1,
            }],
        }

    def test_v1_accepted_with_fallbacks(self):
        loaded = result_set_from_dict(self._v1_doc())
        m = loaded.measurements[0]
        assert m.shape == MatrixShape.square(256)  # square assumed
        assert m.precision is Precision.FP32       # experiment's precision
        assert loaded.experiment.include_transfers is False

    def test_unknown_schema_rejected(self):
        doc = self._v1_doc()
        doc["schema"] = 99
        with pytest.raises(ExperimentError, match="schema"):
            result_set_from_dict(doc)

    def test_missing_schema_rejected(self):
        doc = self._v1_doc()
        del doc["schema"]
        with pytest.raises(ExperimentError):
            result_set_from_dict(doc)


class TestCsv:
    def test_csv_carries_full_shape_and_precision(self):
        exp = cpu_exp(models=("c-openmp",), sizes=(512,))
        model = model_by_name("c-openmp")
        rs = ResultSet(exp)
        rs.add(run_measurement(model, exp, MatrixShape(512, 2048, 128)))
        out = result_set_to_csv(rs)
        header, row = out.strip().splitlines()
        assert header == ("experiment,model,size,n,k,precision,supported,"
                          "gflops,seconds_mean,seconds_stdev,note,status")
        fields = row.split(",")
        assert fields[2:6] == ["512", "2048", "128", "fp64"]
        assert fields[-1] == "ok"

    def test_current_schema_version_exported(self):
        rs = run_experiment(cpu_exp(models=("julia",), sizes=(256,)))
        assert json.loads(result_set_to_json(rs))["schema"] == SCHEMA_VERSION == 4
