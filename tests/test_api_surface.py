"""API-surface contract: every ``__all__`` name exists, is documented,
and docs/API.md stays in sync with the live packages."""

import importlib
import os
import re

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.machine",
    "repro.ir",
    "repro.ir.passes",
    "repro.ir.lint",
    "repro.models",
    "repro.sched",
    "repro.gpu",
    "repro.sim",
    "repro.kernels",
    "repro.arrays",
    "repro.stream",
    "repro.trace",
    "repro.harness",
    "repro.harness.engine",
    "repro.harness.health",
    "repro.harness.journal",
    "repro.service",
    "repro.chaos",
    "repro.ioutil",
]

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.parametrize("modname", PACKAGES)
def test_all_names_resolve(modname):
    mod = importlib.import_module(modname)
    exported = getattr(mod, "__all__", None)
    assert exported, f"{modname} has no __all__"
    for name in exported:
        assert hasattr(mod, name), f"{modname}.{name} listed but missing"


@pytest.mark.parametrize("modname", PACKAGES)
def test_no_duplicate_exports(modname):
    mod = importlib.import_module(modname)
    exported = list(getattr(mod, "__all__", []))
    assert len(exported) == len(set(exported)), f"{modname} duplicates"


@pytest.mark.parametrize("modname", [p for p in PACKAGES if p != "repro"])
def test_public_classes_and_functions_documented(modname):
    mod = importlib.import_module(modname)
    undocumented = []
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if callable(obj) and not (obj.__doc__ or "").strip():
            undocumented.append(name)
    assert not undocumented, f"{modname}: undocumented {undocumented}"


def test_api_doc_covers_every_package():
    with open(os.path.join(REPO, "docs", "API.md")) as fh:
        doc = fh.read()
    for modname in PACKAGES:
        assert f"## `{modname}`" in doc, modname


def test_api_doc_names_still_exported():
    """Every name the doc lists must still exist (regenerate docs/API.md
    after API changes; see the generator snippet in the doc header)."""
    with open(os.path.join(REPO, "docs", "API.md")) as fh:
        doc = fh.read()
    section = None
    missing = []
    for line in doc.splitlines():
        m = re.match(r"## `([\w.]+)`", line)
        if m:
            section = importlib.import_module(m.group(1))
            continue
        m = re.match(r"- `(?:class|def|const) (\w+)", line)
        if m and section is not None:
            if not hasattr(section, m.group(1)):
                missing.append(f"{section.__name__}.{m.group(1)}")
    assert not missing, missing
