"""Campaign service: spec precedence, scheduler, daemon, recovery."""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.config import resolve_campaign_spec
from repro.core.types import DeviceKind, MatrixShape, Precision
from repro.errors import (
    AdmissionError,
    ConfigError,
    DeadlineExpired,
    OverloadError,
    ServiceError,
)
from repro.harness.engine import ResultCache, SweepEngine, cell_fingerprint
from repro.harness.experiment import Experiment
from repro.harness.export import result_set_from_json, result_set_to_json
from repro.harness.health import BreakerPolicy, FallbackLadder
from repro.harness.engine.options import RetryPolicy
from repro.harness.journal import RunRegistry, fsck_store
from repro.harness.report import render_result_set
from repro.harness.runner import run_campaign, run_experiment
from repro.service import (
    AdmissionPolicy,
    CampaignDaemon,
    CampaignService,
    CampaignSpec,
    ClientPolicy,
    FairShareScheduler,
    OverloadPolicy,
    ServiceClient,
    TenantQuota,
    spec_from_dict,
    spec_from_json,
    spec_to_json,
)
from repro.sim.faults import FaultConfig


def small_exp(**kw):
    defaults = dict(
        exp_id="svc-gemm", title="service test", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=("julia", "numba"), sizes=(256, 512), threads=64, reps=3,
    )
    defaults.update(kw)
    return Experiment(**defaults)


def small_spec(tenant="default", priority=0, **kw):
    return CampaignSpec(experiment=small_exp(**kw), tenant=tenant,
                        priority=priority)


def solo_render(spec):
    """What `repro run` prints for the same request, cache-free."""
    results = run_campaign(spec, engine=SweepEngine(cache=None,
                                                    parallel=False))
    return render_result_set(results)


@pytest.fixture
def store(tmp_path):
    return (RunRegistry(str(tmp_path / "runs")),
            ResultCache(str(tmp_path / "cache")))


# --------------------------------------------------------------------------
# CampaignSpec: validation, codec, precedence
# --------------------------------------------------------------------------

class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), engine="warp")
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), jobs=0)
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), tenant="a b")
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), tenant="")
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), priority="high")

    def test_json_roundtrip_full(self):
        spec = CampaignSpec(
            experiment=small_exp(),
            engine="process", jobs=4, cache=False,
            faults=FaultConfig(rate=0.25, seed=7),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=2.0,
                              max_cell_seconds=60.0),
            fail_fast=True,
            breaker=BreakerPolicy.parse("threshold=2,cooldown=30"),
            fallback=FallbackLadder.parse("numba@cpu=julia@cpu"),
            tenant="ci", priority=5,
        )
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_json_roundtrip_sparse(self):
        spec = small_spec()
        text = spec_to_json(spec)
        assert '"faults"' not in text  # unset fields stay sparse
        assert spec_from_json(text) == spec

    def test_newer_version_refused(self):
        payload = {"spec_version": 99,
                   "experiment": small_exp().to_dict()}
        with pytest.raises(ConfigError, match="version 99"):
            spec_from_dict(payload)

    def test_missing_experiment_refused(self):
        with pytest.raises(ConfigError, match="experiment"):
            spec_from_dict({"spec_version": 1})

    def test_run_options_overlays_only_set_fields(self):
        from repro.harness.engine import RunOptions
        base = RunOptions(fail_fast=True, jobs=8)
        opts = CampaignSpec(experiment=small_exp(),
                            cache=False).run_options(base=base)
        assert opts.cache is False     # spec field applied
        assert opts.fail_fast is True  # unset fields inherit the base
        assert opts.jobs == 8

    def test_v2_fields_roundtrip_and_stay_sparse(self):
        spec = CampaignSpec(experiment=small_exp(), deadline_s=30.0,
                            submission_key="ci-nightly-42")
        text = spec_to_json(spec)
        assert '"deadline_s": 30.0' in text
        assert spec_from_json(text) == spec
        # unset v2 fields must not appear, so v2 specs without them are
        # byte-identical to the v1 encoding modulo the version stamp
        sparse = spec_to_json(small_spec())
        assert "deadline_s" not in sparse
        assert "submission_key" not in sparse

    def test_v1_payloads_still_load(self):
        payload = {"spec_version": 1, "experiment": small_exp().to_dict()}
        spec = spec_from_dict(payload)
        assert spec.deadline_s is None
        assert spec.submission_key is None

    def test_v2_field_validation(self):
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), deadline_s=0.0)
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), deadline_s=-5.0)
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), deadline_s=True)
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), submission_key="")
        with pytest.raises(ConfigError):
            CampaignSpec(experiment=small_exp(), submission_key="a b")


class TestResolvePrecedence:
    def test_cli_beats_env_per_component(self):
        spec = resolve_campaign_spec(
            small_exp(),
            cli={"retries": 3, "engine": "serial"},
            environ={"REPRO_RETRIES": "7", "REPRO_ENGINE": "process",
                     "REPRO_BACKOFF": "2.0"})
        assert spec.retry.max_attempts == 4        # CLI wins
        assert spec.retry.backoff_base_s == 2.0    # env fills the rest
        assert spec.engine == "serial"

    def test_env_fills_what_cli_left_unset(self):
        spec = resolve_campaign_spec(
            small_exp(), cli={},
            environ={"REPRO_FAULTS": "0.25", "REPRO_TENANT": "ci",
                     "REPRO_PRIORITY": "5", "REPRO_JOBS": "4",
                     "REPRO_CACHE": "0"})
        assert spec.faults.rate == 0.25
        assert spec.tenant == "ci"
        assert spec.priority == 5
        assert spec.jobs == 4
        assert spec.cache is False

    def test_defaults_stay_none(self):
        spec = resolve_campaign_spec(small_exp(), cli={}, environ={})
        assert spec.engine is None
        assert spec.retry is None
        assert spec.faults is None
        assert spec.tenant == "default"
        assert spec.priority == 0

    def test_fail_fast_false_means_flag_not_given(self):
        spec = resolve_campaign_spec(
            small_exp(), cli={"fail_fast": False},
            environ={"REPRO_FAIL_FAST": "1"})
        assert spec.fail_fast is True  # env decides
        spec = resolve_campaign_spec(
            small_exp(), cli={"fail_fast": True},
            environ={"REPRO_FAIL_FAST": "0"})
        assert spec.fail_fast is True  # CLI wins outright

    def test_bad_env_priority_is_a_config_error(self):
        with pytest.raises(ConfigError):
            resolve_campaign_spec(small_exp(), cli={},
                                  environ={"REPRO_PRIORITY": "urgent"})

    def test_deadline_and_key_cli_beats_env(self):
        spec = resolve_campaign_spec(
            small_exp(),
            cli={"deadline": 15.0, "submission_key": "from-cli"},
            environ={"REPRO_DEADLINE": "600",
                     "REPRO_SUBMISSION_KEY": "from-env"})
        assert spec.deadline_s == 15.0
        assert spec.submission_key == "from-cli"

    def test_deadline_and_key_env_fills_unset(self):
        spec = resolve_campaign_spec(
            small_exp(), cli={},
            environ={"REPRO_DEADLINE": "600",
                     "REPRO_SUBMISSION_KEY": "from-env"})
        assert spec.deadline_s == 600.0
        assert spec.submission_key == "from-env"
        spec = resolve_campaign_spec(small_exp(), cli={}, environ={})
        assert spec.deadline_s is None
        assert spec.submission_key is None

    def test_bad_env_deadline_is_a_config_error(self):
        with pytest.raises(ConfigError):
            resolve_campaign_spec(small_exp(), cli={},
                                  environ={"REPRO_DEADLINE": "tomorrow"})


# --------------------------------------------------------------------------
# scheduler
# --------------------------------------------------------------------------

class TestScheduler:
    def test_weighted_fair_share_converges_to_weight_ratio(self):
        policy = AdmissionPolicy(quotas=(("big", TenantQuota(weight=2.0)),))
        sched = FairShareScheduler(policy)
        sched.submit("c-big", "big")
        sched.submit("c-small", "small")
        grants = {"c-big": 0, "c-small": 0}
        for _ in range(30):
            picked = sched.select()
            sched.charge(picked)
            grants[picked] += 1
        assert grants["c-big"] == 20
        assert grants["c-small"] == 10

    def test_grant_sequence_is_deterministic(self):
        def run():
            sched = FairShareScheduler()
            sched.submit("a1", "alice")
            sched.submit("b1", "bob")
            sched.submit("a2", "alice", priority=2)
            seq = []
            for _ in range(12):
                picked = sched.select()
                seq.append(picked)
                sched.charge(picked)
            return seq
        assert run() == run()

    def test_priority_preempts_within_tenant_only(self):
        sched = FairShareScheduler()
        sched.submit("low", "alice", priority=0)
        assert sched.select() == "low"
        sched.charge("low")
        sched.begin("low")
        sched.submit("high", "alice", priority=5)
        # Next alice grant goes to the high-priority arrival; the
        # in-flight campaign keeps its slot for later.
        assert sched.select() == "high"
        sched.charge("high")
        sched.finish("high")
        assert sched.select() == "low"
        sched.finish("low")
        assert sched.select() is None

    def test_new_tenant_gets_no_retroactive_credit(self):
        sched = FairShareScheduler()
        sched.submit("a1", "alice")
        for _ in range(10):
            sched.charge("a1")
        sched.submit("b1", "bob")  # starts at alice's pass, not zero
        counts = {"a1": 0, "b1": 0}
        for _ in range(10):
            picked = sched.select()
            sched.charge(picked)
            counts[picked] += 1
        assert counts["b1"] == 5  # fair from now on, no catch-up burst

    def test_admission_quota_per_tenant(self):
        policy = AdmissionPolicy(default_quota=TenantQuota(max_queued=1))
        sched = FairShareScheduler(policy)
        sched.submit("a1", "alice")
        with pytest.raises(AdmissionError) as exc_info:
            sched.submit("a2", "alice")
        assert exc_info.value.tenant == "alice"
        assert exc_info.value.limit == 1
        sched.submit("b1", "bob")  # other tenants are unaffected
        sched.finish("a1")
        sched.submit("a2", "alice")  # quota freed by the finish

    def test_admission_global_cap_and_preadmitted_bypass(self):
        policy = AdmissionPolicy(max_total=2)
        sched = FairShareScheduler(policy)
        sched.submit("a1", "alice")
        sched.submit("b1", "bob")
        with pytest.raises(AdmissionError) as exc_info:
            sched.submit("c1", "carol")
        assert exc_info.value.limit == 2
        sched.submit("c1", "carol", preadmitted=True)  # recovery path

    def test_duplicate_and_unknown_campaigns_are_errors(self):
        sched = FairShareScheduler()
        sched.submit("a1", "alice")
        with pytest.raises(ServiceError):
            sched.submit("a1", "alice")
        with pytest.raises(ServiceError):
            sched.charge("ghost")


class TestOverloadPolicy:
    def test_shed_threshold_and_retry_after_are_deterministic(self):
        policy = OverloadPolicy()
        assert policy.shed_threshold(64) == 52       # ceil(0.8 * 64)
        assert policy.shed_threshold(1) == 1
        assert not policy.should_shed(51, 64)
        assert policy.should_shed(52, 64)
        # Retry-After scales with backlog, clamped to [1, 30] whole
        # seconds so the header is always a valid integer.
        assert policy.retry_after_s(0) == 1.0
        assert policy.retry_after_s(10) == 5.0
        assert policy.retry_after_s(1000) == 30.0

    def test_invalid_policies_are_refused(self):
        with pytest.raises(ServiceError):
            OverloadPolicy(shed_fraction=0.0)
        with pytest.raises(ServiceError):
            OverloadPolicy(shed_fraction=1.5)
        with pytest.raises(ServiceError):
            OverloadPolicy(stall_s=-1.0)
        with pytest.raises(ServiceError):
            OverloadPolicy(min_retry_after_s=10.0, max_retry_after_s=1.0)


class TestClientPolicy:
    def test_backoff_is_capped_exponential_without_jitter(self):
        policy = ClientPolicy(retries=5)
        assert [policy.backoff_s(n) for n in range(6)] == \
            [0.05, 0.1, 0.2, 0.4, 0.8, 1.0]
        # deterministic: same attempt, same delay, every time
        assert policy.backoff_s(3) == policy.backoff_s(3)

    def test_invalid_policies_are_refused(self):
        with pytest.raises(ConfigError):
            ClientPolicy(retries=-1)
        with pytest.raises(ConfigError):
            ClientPolicy(backoff_base_s=0.0)
        with pytest.raises(ConfigError):
            ClientPolicy(backoff_base_s=2.0, backoff_max_s=1.0)


# --------------------------------------------------------------------------
# service: dedup, byte-identity, recovery
# --------------------------------------------------------------------------

class TestServiceDedup:
    def test_overlapping_cells_execute_once_reports_match_solo(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        spec_a = small_spec(tenant="alice", models=("julia", "numba"))
        spec_b = small_spec(tenant="bob", models=("julia", "kokkos"))
        id_a = svc.submit(spec_a)
        id_b = svc.submit(spec_b)
        svc.run_until_idle()

        camp_a, camp_b = svc.campaigns[id_a], svc.campaigns[id_b]
        assert camp_a.state == "done" and camp_b.state == "done"
        # alice (first in tenant-name order) executed all 4 of her cells;
        # bob's overlapping julia cells were served from alice's results.
        assert camp_a.stats["executed"] == 4
        assert camp_b.stats["executed"] == 2
        assert camp_b.stats["deduped"] == 2
        assert svc.dedup_hits == 2
        for size in (256, 512):
            fp = cell_fingerprint(spec_b.experiment, "julia",
                                  MatrixShape.square(size))
            assert svc.dedup_origin(fp) == id_a

        # Interleaved multi-tenant execution changes nothing observable:
        # each report is byte-identical to the campaign run alone.
        assert render_result_set(svc.result_set(id_a)) == solo_render(spec_a)
        assert render_result_set(svc.result_set(id_b)) == solo_render(spec_b)

    def test_distinct_experiments_do_not_dedup(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        # Same models/sizes, different exp_id: the id seeds the
        # variability stream, so these are genuinely different cells.
        svc.submit(small_spec(tenant="alice", exp_id="exp-a"))
        svc.submit(small_spec(tenant="bob", exp_id="exp-b"))
        svc.run_until_idle()
        assert svc.dedup_hits == 0

    def test_failed_campaign_leaves_other_tenants_unharmed(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        bad = CampaignSpec(
            experiment=small_exp(exp_id="boom", models=("julia",),
                                 sizes=(256,)),
            faults=FaultConfig(rate=0.0, always=("julia@256",)),
            fail_fast=True, tenant="alice")
        good = small_spec(tenant="bob", exp_id="fine")
        id_bad = svc.submit(bad)
        id_good = svc.submit(good)
        svc.run_until_idle()
        assert svc.campaigns[id_bad].state == "failed"
        assert svc.campaigns[id_bad].error
        assert svc.campaigns[id_good].state == "done"
        assert render_result_set(svc.result_set(id_good)) == solo_render(good)


class TestServiceRecovery:
    def test_restart_resumes_all_campaigns_byte_identically(self, store):
        registry, cache = store
        svc1 = CampaignService(registry=registry, cache=cache)
        spec_a = small_spec(tenant="alice", exp_id="re-a")
        spec_b = small_spec(tenant="bob", exp_id="re-b",
                            models=("julia", "kokkos"))
        id_a = svc1.submit(spec_a)
        id_b = svc1.submit(spec_b)
        for _ in range(5):  # alice 3 cells, bob 2 — both mid-flight
            assert svc1.step()
        svc1.suspend()  # the graceful-shutdown half of a daemon restart

        svc2 = CampaignService(registry=registry, cache=cache)
        assert sorted(svc2.recover()) == sorted([id_a, id_b])
        svc2.run_until_idle()
        for cid in (id_a, id_b):
            assert svc2.campaigns[cid].state == "done"
            assert svc2.campaigns[cid].recovered
        assert svc2.campaigns[id_a].stats["replayed"] == 3
        assert svc2.campaigns[id_b].stats["replayed"] == 2
        assert render_result_set(svc2.result_set(id_a)) == solo_render(spec_a)
        assert render_result_set(svc2.result_set(id_b)) == solo_render(spec_b)

    def test_recover_skips_journals_owned_by_a_live_process(self, store):
        registry, cache = store
        svc1 = CampaignService(registry=registry, cache=cache)
        cid = svc1.submit(small_spec(tenant="alice"))
        for _ in range(2):
            svc1.step()
        # No suspend: the ACTIVE sidecar still names this (live) process,
        # so a second daemon must leave the journal alone.
        svc2 = CampaignService(registry=registry, cache=cache)
        assert svc2.recover() == []
        registry.release_active(cid)  # the owner died
        assert svc2.recover() == [cid]

    def test_recover_ignores_plain_and_finished_runs(self, store):
        registry, cache = store
        svc1 = CampaignService(registry=registry, cache=cache)
        done = svc1.submit(small_spec(tenant="alice", exp_id="done"))
        svc1.run_until_idle()
        assert svc1.campaigns[done].state == "done"
        # A plain `repro run` journal: no campaign record.
        plain = registry.create()
        plain.close()
        svc2 = CampaignService(registry=registry, cache=cache)
        assert svc2.recover() == []

    def test_submit_is_durable_before_any_execution(self, store):
        registry, cache = store
        svc1 = CampaignService(registry=registry, cache=cache)
        spec = small_spec(tenant="alice", exp_id="durable")
        cid = svc1.submit(spec)  # not a single step
        svc1.suspend()
        svc2 = CampaignService(registry=registry, cache=cache)
        assert svc2.recover() == [cid]
        svc2.run_until_idle()
        assert render_result_set(svc2.result_set(cid)) == solo_render(spec)


# --------------------------------------------------------------------------
# overload hardening: deadlines, idempotent submission, shedding
# --------------------------------------------------------------------------

def keyed_spec(key, deadline=None, **kw):
    import dataclasses
    return dataclasses.replace(small_spec(**kw), submission_key=key,
                               deadline_s=deadline)


class TestDeadlineExpiry:
    def test_lapsed_deadline_expires_through_degraded_path(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        spec = keyed_spec("dl-1", deadline=0.001, exp_id="dl")
        cid = svc.submit(spec)
        time.sleep(0.005)
        svc.run_until_idle()
        campaign = svc.campaigns[cid]
        assert campaign.state == "expired"
        assert "expired" in campaign.error
        # every cell failed through the ordinary degraded path: the
        # journal closed complete, the report renders with e=0 rows.
        assert campaign.stats["failed"] == campaign.cells_total == 4
        assert registry.load(cid).status == "complete"
        report = render_result_set(svc.result_set(cid))
        assert "DEGRADED" in report
        assert "deadline" in report

    def test_expiry_only_at_cell_boundaries(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        cid = svc.submit(keyed_spec("dl-2", deadline=300.0, exp_id="dlb"))
        svc.step()  # cell 1 executes well inside the budget
        # the deadline lapses mid-campaign...
        svc.campaigns[cid].submitted_at = time.time() - 400.0
        svc.run_until_idle()
        campaign = svc.campaigns[cid]
        # ...so the executed cell keeps its real measurement and only
        # the cells that never ran are expired.
        assert campaign.state == "expired"
        assert campaign.stats["failed"] == 3
        assert campaign.stats["executed"] == 1

    def test_generous_deadline_changes_no_bytes(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        spec = keyed_spec("dl-3", deadline=3600.0, exp_id="dlok")
        cid = svc.submit(spec)
        svc.run_until_idle()
        assert svc.campaigns[cid].state == "done"
        # the deadline is not part of any fingerprint or report
        import dataclasses
        bare = dataclasses.replace(spec, deadline_s=None,
                                   submission_key=None)
        assert render_result_set(svc.result_set(cid)) == solo_render(bare)

    def test_restart_never_extends_a_deadline(self, store):
        registry, cache = store
        svc1 = CampaignService(registry=registry, cache=cache)
        cid = svc1.submit(keyed_spec("dl-4", deadline=0.001, exp_id="dlr"))
        svc1.suspend()  # daemon dies before the first grant
        time.sleep(0.005)
        svc2 = CampaignService(registry=registry, cache=cache)
        assert svc2.recover() == [cid]
        # the recovered campaign's budget counts from the journal's
        # birth, not the restart
        assert svc2.campaigns[cid].deadline_lapsed()
        svc2.run_until_idle()
        assert svc2.campaigns[cid].state == "expired"

    def test_expired_campaigns_are_not_requeued_on_recover(self, store):
        registry, cache = store
        svc1 = CampaignService(registry=registry, cache=cache)
        cid = svc1.submit(keyed_spec("dl-5", deadline=0.001, exp_id="dlq"))
        time.sleep(0.005)
        svc1.run_until_idle()
        assert svc1.campaigns[cid].state == "expired"
        svc1.suspend()
        svc2 = CampaignService(registry=registry, cache=cache)
        assert svc2.recover() == []


class TestIdempotentSubmit:
    def test_same_key_returns_original_id_without_disk(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        spec = keyed_spec("retry-1", exp_id="idem")
        cid = svc.submit(spec)
        assert svc.submit_idempotent(spec) == (cid, True)
        assert svc.submit(spec) == cid
        assert svc.duplicates_total == 2
        assert svc.accepted_total == 1
        assert len(registry.run_ids()) == 1  # one journal, not three

    def test_distinct_keys_are_distinct_campaigns(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        a = svc.submit(keyed_spec("k-a", exp_id="idem"))
        b = svc.submit(keyed_spec("k-b", exp_id="idem"))
        assert a != b

    def test_key_map_survives_restart_even_for_finished_campaigns(
            self, store):
        registry, cache = store
        svc1 = CampaignService(registry=registry, cache=cache)
        spec = keyed_spec("retry-2", exp_id="idemr")
        cid = svc1.submit(spec)
        svc1.run_until_idle()
        assert svc1.campaigns[cid].state == "done"
        svc1.suspend()
        # The daemon restarts; the retried submit must converge on the
        # original id even though the campaign is finished and recover()
        # requeues nothing.
        svc2 = CampaignService(registry=registry, cache=cache)
        assert svc2.recover() == []
        assert svc2.submit_idempotent(spec) == (cid, True)
        assert len(registry.run_ids()) == 1

    def test_unkeyed_submits_never_dedup(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        spec = small_spec(exp_id="nokey")
        assert svc.submit(spec) != svc.submit(spec)


class TestLoadShedding:
    def shed_service(self, store, max_total=4):
        registry, cache = store
        return CampaignService(
            registry=registry, cache=cache,
            policy=AdmissionPolicy(
                max_total=max_total,
                default_quota=TenantQuota(max_queued=max_total)))

    def test_sheds_past_threshold_before_admission_wall(self, store):
        svc = self.shed_service(store, max_total=4)  # shed at ceil(3.2)=4
        for i in range(3):
            svc.submit(small_spec(exp_id=f"shed-{i}"))
        svc.check_overload()  # backlog 3 < 4: accepting
        svc.submit(small_spec(exp_id="shed-3"))
        with pytest.raises(OverloadError) as excinfo:
            svc.check_overload()
        assert excinfo.value.retry_after_s >= 1.0
        assert svc.shed_total == 1
        # the shed hint also rides in the status document
        overload = svc.status_payload()["overload"]
        assert overload["shed"] == 1
        assert overload["shed_threshold"] == 4

    def test_stalled_scheduler_sheds_even_below_threshold(self, store):
        svc = self.shed_service(store, max_total=8)
        svc.submit(small_spec(exp_id="stall"))
        svc.check_overload()  # backlog 1, fresh grant clock: fine
        svc._last_grant = time.time() - 120.0  # wedged for 2 minutes
        with pytest.raises(OverloadError, match="wedged"):
            svc.check_overload()
        svc.run_until_idle()  # granting clears the stall verdict
        svc.check_overload()


# --------------------------------------------------------------------------
# ACTIVE sidecars: runs list, fsck, liveness pruning
# --------------------------------------------------------------------------

class TestActiveState:
    def test_in_flight_campaign_shows_active_and_fsck_skips_it(self, store):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        cid = svc.submit(small_spec(tenant="alice"))
        svc.step()
        listing = registry.render_list()
        assert "ACTIVE" in listing
        assert f"pid {os.getpid()}" in listing
        report = fsck_store(registry=registry)
        assert report.active_skipped == 1
        assert not report.corrupt
        svc.run_until_idle()
        assert "ACTIVE" not in registry.render_list()
        assert registry.active_info(cid) is None

    def test_dead_owner_sidecar_is_pruned(self, store):
        registry, _ = store
        journal = registry.create()
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        registry.mark_active(journal.run_id, pid=proc.pid)
        assert registry.active_info(journal.run_id) is None
        assert not os.path.exists(registry.active_path(journal.run_id))
        journal.close()


# --------------------------------------------------------------------------
# deprecated shims
# --------------------------------------------------------------------------

class TestShims:
    def test_run_experiment_warns_and_matches_run_campaign(self):
        exp = small_exp(exp_id="shim")
        engine = SweepEngine(cache=None, parallel=False)
        with pytest.deprecated_call():
            old = run_experiment(exp, engine=engine)
        new = run_campaign(CampaignSpec(experiment=exp), engine=engine)
        assert render_result_set(old) == render_result_set(new)

    def test_top_level_export(self):
        assert repro.run_campaign is run_campaign


# --------------------------------------------------------------------------
# daemon: wire API over a Unix socket
# --------------------------------------------------------------------------

class TestDaemonWire:
    @pytest.fixture
    def daemon(self, store, tmp_path):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        sock = str(tmp_path / "s.sock")
        daemon = CampaignDaemon(service=svc, socket_path=sock)
        thread = threading.Thread(
            target=daemon.serve, kwargs={"install_signals": False},
            daemon=True)
        thread.start()
        yield daemon
        daemon.request_shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_wire_round_trip(self, daemon):
        client = ServiceClient(daemon.socket_path)
        assert client.ping()["ok"] is True

        spec = small_spec(tenant="alice", exp_id="wire")
        cid = client.submit(spec)
        row = client.wait(cid, timeout=120)
        assert row["state"] == "done"
        assert client.report(cid).rstrip("\n") == solo_render(spec)

        status = client.status()
        assert status["backlog"] == 0
        assert [c["id"] for c in status["campaigns"]] == [cid]
        assert client.campaigns()[0]["tenant"] == "alice"

    def test_wire_errors_keep_their_kind(self, daemon):
        client = ServiceClient(daemon.socket_path)
        with pytest.raises(ServiceError):
            client.campaign("no-such-campaign")
        with pytest.raises(ConfigError):
            client.submit_payload({"spec_version": 1})  # no experiment
        with pytest.raises(ConfigError, match="version 99"):
            client.submit_payload({"spec_version": 99,
                                   "experiment": small_exp().to_dict()})

    def test_duplicate_submit_answers_original_id(self, daemon):
        client = ServiceClient(daemon.socket_path)
        spec = keyed_spec("wire-dup", exp_id="wiredup")
        cid = client.submit(spec)
        assert client.submit(spec) == cid  # 200 + duplicate, not 409
        client.wait(cid, timeout=120)
        assert client.submit(spec) == cid  # still answered when done
        overload = client.status()["overload"]
        assert overload["duplicates"] == 2
        assert overload["accepted"] == 1

    def test_expired_campaign_raises_deadline_expired_on_wait(self, daemon):
        client = ServiceClient(daemon.socket_path)
        # 12 cells under a 50 ms budget cannot finish in time, so the
        # campaign must expire at a cell boundary whatever the timing.
        spec = keyed_spec("wire-dl", deadline=0.05, exp_id="wiredl",
                          models=("julia", "numba", "kokkos"),
                          sizes=(256, 512, 1024, 2048))
        cid = client.submit(spec)
        with pytest.raises(DeadlineExpired) as excinfo:
            client.wait(cid, timeout=120)
        assert excinfo.value.campaign_id == cid
        assert excinfo.value.deadline_s == 0.05
        row = client.campaign(cid)
        assert row["state"] == "expired"
        assert row["deadline_s"] == 0.05
        # the degraded report still renders
        assert "DEGRADED" in client.report(cid)

    def test_report_json_roundtrips_byte_identically(self, daemon):
        client = ServiceClient(daemon.socket_path)
        spec = small_spec(tenant="alice", exp_id="wirejson")
        cid = client.submit(spec)
        client.wait(cid, timeout=120)
        exported = client.report(cid, fmt="json")
        # the wire export is byte-identical to `repro run --format json`
        solo = run_campaign(spec, engine=SweepEngine(cache=None,
                                                     parallel=False))
        assert exported == result_set_to_json(solo) + "\n"
        # and round-trips through the artifact loader losslessly
        loaded = result_set_from_json(exported)
        assert render_result_set(loaded) == solo_render(spec)
        assert result_set_to_json(loaded) + "\n" == exported

    def test_second_daemon_on_live_socket_fails_fast(self, daemon):
        client = ServiceClient(daemon.socket_path)
        client.ping()
        with pytest.raises(ServiceError, match="already serving"):
            CampaignDaemon(service=daemon.service,
                           socket_path=daemon.socket_path)

    def test_client_without_daemon_raises_service_error(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nobody.sock"))
        with pytest.raises(ServiceError, match="repro serve"):
            client.ping()


class TestDaemonShutdown:
    def test_draining_daemon_refuses_new_campaigns(self, store, tmp_path):
        # A daemon whose shutdown was requested must not take new work:
        # its scheduler loop is about to exit, so an accepted campaign
        # would sit journaled-but-unscheduled until some later daemon
        # life recovers it.  The wire answer is 503, not 202.
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        sock = str(tmp_path / "drain.sock")
        daemon = CampaignDaemon(service=svc, socket_path=sock)
        listener = threading.Thread(target=daemon.server.serve_forever,
                                    daemon=True)
        listener.start()
        try:
            client = ServiceClient(sock)
            assert client.ping()["ok"] is True
            daemon.request_shutdown()  # serve() is not running: the
            # listener stays up, exactly the drain window we must cover
            assert client.ping()["state"] == "draining"
            with pytest.raises(ServiceError, match="draining"):
                client.submit(small_spec(exp_id="drain"))
            assert client.status()["backlog"] == 0  # nothing journaled
        finally:
            daemon.server.shutdown()
            daemon.server.server_close()
            try:
                os.unlink(sock)
            except OSError:
                pass

    def test_shutdown_endpoint_stops_serve_and_removes_socket(self, store,
                                                              tmp_path):
        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        sock = str(tmp_path / "down.sock")
        daemon = CampaignDaemon(service=svc, socket_path=sock)
        thread = threading.Thread(
            target=daemon.serve, kwargs={"install_signals": False},
            daemon=True)
        thread.start()
        client = ServiceClient(sock)
        client.ping()
        client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert not os.path.exists(sock)


class TestOverloadWire:
    @pytest.fixture
    def idle_daemon(self, store, tmp_path):
        # Listener only, no scheduler loop: the backlog cannot drain, so
        # shedding behaviour is deterministic.
        registry, cache = store
        svc = CampaignService(
            registry=registry, cache=cache,
            policy=AdmissionPolicy(max_total=4,
                                   default_quota=TenantQuota(max_queued=4)))
        sock = str(tmp_path / "shed.sock")
        daemon = CampaignDaemon(service=svc, socket_path=sock)
        listener = threading.Thread(target=daemon.server.serve_forever,
                                    daemon=True)
        listener.start()
        yield daemon
        daemon.server.shutdown()
        daemon.server.server_close()
        try:
            os.unlink(sock)
        except OSError:
            pass

    def test_saturated_daemon_sheds_429_with_retry_after(self, idle_daemon):
        client = ServiceClient(idle_daemon.socket_path)
        for i in range(4):  # shed threshold = ceil(0.8 * 4) = 4
            client.submit(small_spec(exp_id=f"shed-{i}"))
        with pytest.raises(OverloadError) as excinfo:
            client.submit(small_spec(exp_id="shed-4"))
        assert excinfo.value.retry_after_s >= 1.0
        assert "saturated" in str(excinfo.value)
        # shed before admission and before disk: nothing was journaled
        assert idle_daemon.service.scheduler.backlog == 4
        assert client.status()["overload"]["shed"] == 1

    def test_client_retries_shed_submit_only_with_key(self, idle_daemon):
        sock = idle_daemon.socket_path
        for i in range(4):
            ServiceClient(sock).submit(small_spec(exp_id=f"pre-{i}"))
        fast = ClientPolicy(retries=1, backoff_base_s=0.001,
                            backoff_factor=1.0, backoff_max_s=0.001)
        # a keyed submit retries (and still fails: nothing drains)...
        client = ServiceClient(sock, policy=fast)
        t0 = time.monotonic()
        with pytest.raises(OverloadError):
            client.submit(keyed_spec("retry-shed", exp_id="k"))
        assert client.retries_used == 1
        # ...honouring the daemon's Retry-After between attempts
        assert time.monotonic() - t0 >= 2.0
        # an unkeyed submit must not be retried: a lost ACK would
        # duplicate the campaign
        client = ServiceClient(sock, policy=fast)
        with pytest.raises(OverloadError):
            client.submit(small_spec(exp_id="nokey"))
        assert client.retries_used == 0

    def test_unreachable_daemon_is_retryable_for_gets(self, tmp_path):
        fast = ClientPolicy(retries=3, backoff_base_s=0.001,
                            backoff_factor=1.0, backoff_max_s=0.001)
        client = ServiceClient(str(tmp_path / "nobody.sock"), policy=fast)
        with pytest.raises(ServiceError, match="repro serve"):
            client.ping()
        assert client.retries_used == 3  # GETs retry on connect-refused
        client = ServiceClient(str(tmp_path / "nobody.sock"), policy=fast)
        with pytest.raises(ServiceError):
            client.submit(small_spec(exp_id="gone"))
        assert client.retries_used == 0  # unkeyed POSTs never retry


# --------------------------------------------------------------------------
# the real process lifecycle: serve, SIGTERM mid-campaign, restart
# --------------------------------------------------------------------------

def _wait_until(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _ping_ok(sock):
    try:
        return ServiceClient(sock).ping().get("ok") is True
    except ServiceError:
        return False


class TestDaemonProcessRestart:
    def test_sigterm_then_restart_finishes_campaigns_byte_identically(
            self, tmp_path):
        sock = str(tmp_path / "d.sock")
        runs_dir = str(tmp_path / "runs")
        cache_dir = str(tmp_path / "cache")
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ,
                   REPRO_RUNS_DIR=runs_dir, REPRO_CACHE_DIR=cache_dir,
                   PYTHONPATH=src_dir + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))

        def start_daemon():
            return subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--socket", sock],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)

        spec_a = CampaignSpec(
            experiment=small_exp(exp_id="restart-a",
                                 models=("julia", "numba", "kokkos"),
                                 sizes=(256, 512, 1024, 2048), reps=4),
            tenant="alice")
        spec_b = CampaignSpec(
            experiment=small_exp(exp_id="restart-b",
                                 models=("julia", "numba", "kokkos"),
                                 sizes=(256, 512, 1024, 2048), reps=4),
            tenant="bob")

        first = start_daemon()
        try:
            assert _wait_until(lambda: _ping_ok(sock)), "daemon never served"
            client = ServiceClient(sock)
            id_a = client.submit(spec_a)
            id_b = client.submit(spec_b)
            # SIGTERM lands mid-campaign (24 cells are queued); the daemon
            # must stop at a cell boundary and leave resumable journals.
            first.send_signal(signal.SIGTERM)
            assert first.wait(timeout=60) == 0
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=30)

        registry = RunRegistry(runs_dir)

        def both_complete():
            try:
                return (registry.load(id_a).status == "complete"
                        and registry.load(id_b).status == "complete")
            except Exception:
                return False

        second = start_daemon()
        try:
            assert _wait_until(lambda: _ping_ok(sock)), "restart never served"
            assert _wait_until(both_complete, timeout=180), \
                "recovered campaigns never finished"
        finally:
            try:
                ServiceClient(sock).shutdown()
            except ServiceError:
                second.terminate()
            assert second.wait(timeout=60) == 0

        # Journal reconstruction serves campaigns whichever daemon life
        # finished them; both must match the campaign run alone.
        svc = CampaignService(registry=registry,
                              cache=ResultCache(cache_dir))
        assert render_result_set(svc.result_set(id_a)) == solo_render(spec_a)
        assert render_result_set(svc.result_set(id_b)) == solo_render(spec_b)

    def test_sigkill_then_restart_finishes_campaigns_byte_identically(
            self, tmp_path):
        # Same lifecycle as the SIGTERM test but with `kill -9`: no
        # graceful stop, no atexit, no journal finalization — the dead
        # daemon leaves ACTIVE sidecars with its (now dead) pid behind,
        # and the next life must prune them and finish the campaigns
        # byte-identically from the journals alone.
        sock = str(tmp_path / "d.sock")
        runs_dir = str(tmp_path / "runs")
        cache_dir = str(tmp_path / "cache")
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ,
                   REPRO_RUNS_DIR=runs_dir, REPRO_CACHE_DIR=cache_dir,
                   PYTHONPATH=src_dir + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))

        def start_daemon():
            return subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--socket", sock],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)

        spec_a = CampaignSpec(
            experiment=small_exp(exp_id="kill9-a",
                                 models=("julia", "numba", "kokkos"),
                                 sizes=(256, 512, 1024, 2048), reps=4),
            tenant="alice")
        spec_b = CampaignSpec(
            experiment=small_exp(exp_id="kill9-b",
                                 models=("julia", "numba", "kokkos"),
                                 sizes=(256, 512, 1024, 2048), reps=4),
            tenant="bob")

        registry = RunRegistry(runs_dir)
        first = start_daemon()
        try:
            assert _wait_until(lambda: _ping_ok(sock)), "daemon never served"
            client = ServiceClient(sock)
            id_a = client.submit(spec_a)
            id_b = client.submit(spec_b)
            # wait until at least one campaign is marked ACTIVE so the
            # kill provably lands mid-execution, not pre-grant
            assert _wait_until(
                lambda: os.path.exists(registry.active_path(id_a))
                or os.path.exists(registry.active_path(id_b))), \
                "no campaign ever went active"
            first.kill()
            assert first.wait(timeout=60) == -signal.SIGKILL
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=30)

        # the corpse: at least one ACTIVE sidecar naming the dead pid
        dead = [rid for rid in (id_a, id_b)
                if os.path.exists(registry.active_path(rid))]
        assert dead, "SIGKILL'd daemon left no ACTIVE sidecar behind"

        def both_complete():
            try:
                return (registry.load(id_a).status == "complete"
                        and registry.load(id_b).status == "complete")
            except Exception:
                return False

        second = start_daemon()
        try:
            assert _wait_until(lambda: _ping_ok(sock)), "restart never served"
            assert _wait_until(both_complete, timeout=180), \
                "recovered campaigns never finished"
        finally:
            try:
                ServiceClient(sock).shutdown()
            except ServiceError:
                second.terminate()
            assert second.wait(timeout=60) == 0

        # dead-owner sidecars are pruned, the reports are byte-identical
        for rid in (id_a, id_b):
            assert registry.active_info(rid) is None
            assert not os.path.exists(registry.active_path(rid))
        svc = CampaignService(registry=registry,
                              cache=ResultCache(cache_dir))
        assert render_result_set(svc.result_set(id_a)) == solo_render(spec_a)
        assert render_result_set(svc.result_set(id_b)) == solo_render(spec_b)


# --------------------------------------------------------------------------
# CLI integration: submit/status/serve --stop against a live daemon
# --------------------------------------------------------------------------

class TestCliService:
    def test_submit_wait_and_status_and_stop(self, store, tmp_path, capsys):
        from repro.cli import main

        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        sock = str(tmp_path / "cli.sock")
        daemon = CampaignDaemon(service=svc, socket_path=sock)
        thread = threading.Thread(
            target=daemon.serve, kwargs={"install_signals": False},
            daemon=True)
        thread.start()
        try:
            assert _wait_until(lambda: _ping_ok(sock))
            rc = main(["submit", "--socket", sock, "--exp-id", "cli-run",
                       "--models", "julia,numba", "--sizes", "256,512",
                       "--reps", "3", "--tenant", "alice", "--wait"])
            out = capsys.readouterr().out
            assert rc == 0
            # `repro submit --wait` prints exactly what `repro run` would.
            solo = solo_render(CampaignSpec(experiment=Experiment(
                exp_id="cli-run", title="custom CLI experiment",
                node_name="crusher", device=DeviceKind.CPU,
                precision=Precision.FP64, models=("julia", "numba"),
                sizes=(256, 512), reps=3)))
            assert out == solo + "\n"

            assert main(["status", "--socket", sock]) == 0
            out = capsys.readouterr().out
            assert "campaign daemon: pid" in out
            assert "alice" in out

            assert main(["status", "--socket", sock,
                         "--format", "json"]) == 0
            out = capsys.readouterr().out
            assert '"tenants"' in out
        finally:
            rc = main(["serve", "--stop", "--socket", sock])
            thread.join(timeout=30)
        assert rc == 0
        assert not thread.is_alive()

    def test_status_without_daemon_exits_1(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["status", "--socket", str(tmp_path / "none.sock")])
        assert rc == 1
        assert "repro serve" in capsys.readouterr().err

    def test_submit_wait_on_expired_campaign_exits_1(self, store, tmp_path,
                                                     capsys):
        from repro.cli import main

        registry, cache = store
        svc = CampaignService(registry=registry, cache=cache)
        sock = str(tmp_path / "dl.sock")
        daemon = CampaignDaemon(service=svc, socket_path=sock)
        thread = threading.Thread(
            target=daemon.serve, kwargs={"install_signals": False},
            daemon=True)
        thread.start()
        try:
            assert _wait_until(lambda: _ping_ok(sock))
            rc = main(["submit", "--socket", sock, "--exp-id", "cli-dl",
                       "--models", "julia,numba,kokkos",
                       "--sizes", "256,512,1024,2048", "--reps", "2",
                       "--deadline", "0.05", "--submission-key", "cli-dl-1",
                       "--wait"])
            captured = capsys.readouterr()
            assert rc == 1
            assert "expired" in captured.err
        finally:
            main(["serve", "--stop", "--socket", sock])
            thread.join(timeout=30)
        assert not thread.is_alive()

    def test_client_retries_resolution(self, monkeypatch):
        import argparse

        from repro.cli import _client_retries

        ns = argparse.Namespace(client_retries=None)
        monkeypatch.delenv("REPRO_CLIENT_RETRIES", raising=False)
        assert _client_retries(ns) == 0
        monkeypatch.setenv("REPRO_CLIENT_RETRIES", "5")
        assert _client_retries(ns) == 5
        # the flag beats the environment
        assert _client_retries(argparse.Namespace(client_retries=2)) == 2
        monkeypatch.setenv("REPRO_CLIENT_RETRIES", "many")
        with pytest.raises(ConfigError):
            _client_retries(ns)
        monkeypatch.setenv("REPRO_CLIENT_RETRIES", "-1")
        with pytest.raises(ConfigError):
            _client_retries(ns)
