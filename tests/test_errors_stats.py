"""Tests for the error hierarchy and the stats helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    ConfigError,
    ExperimentError,
    IRVerificationError,
    KernelValidationError,
    MachineModelError,
    ReproError,
    UnsupportedConfigurationError,
)
from repro.harness.stats import ci95, geomean, mean, median, stdev, summarize


class TestErrors:
    def test_hierarchy(self):
        for exc in (ConfigError, ExperimentError, IRVerificationError,
                    KernelValidationError, MachineModelError,
                    UnsupportedConfigurationError):
            assert issubclass(exc, ReproError)

    def test_unsupported_message(self):
        e = UnsupportedConfigurationError("Numba", "MI250X", "deprecated")
        assert "Numba" in str(e) and "MI250X" in str(e) and "deprecated" in str(e)
        assert e.model == "Numba"

    def test_unsupported_without_reason(self):
        e = UnsupportedConfigurationError("X", "Y")
        assert str(e) == "X is not supported on Y"


class TestStats:
    def test_mean_median(self):
        assert mean([1, 2, 3]) == 2
        assert median([1, 2, 3, 100]) == 2.5
        assert median([5]) == 5

    def test_stdev(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)
        assert stdev([3]) == 0.0

    def test_empty_rejected(self):
        for fn in (mean, median, stdev, geomean):
            with pytest.raises(ValueError):
                fn([])

    def test_ci95_contains_mean(self):
        lo, hi = ci95([1.0, 1.1, 0.9, 1.05, 0.95])
        assert lo < 1.0 < hi

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([1, 0])

    def test_summarize_keys(self):
        s = summarize([1.0, 2.0])
        assert set(s) == {"n", "mean", "median", "stdev", "min", "max"}
        assert s["n"] == 2

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=30))
    def test_mean_bounds(self, xs):
        assert min(xs) - 1e-9 <= mean(xs) <= max(xs) + 1e-9

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=30))
    def test_geomean_le_mean(self, xs):
        assert geomean(xs) <= mean(xs) * (1 + 1e-9)

    @given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=30))
    def test_median_is_order_statistic(self, xs):
        assert min(xs) <= median(xs) <= max(xs)
