"""Tests for the programming-model frontends: support matrix and lowerings."""

import pytest

from repro.arrays.random import FillPolicy
from repro.config import RunConfig
from repro.core.types import DeviceKind, Layout, Precision
from repro.errors import UnsupportedConfigurationError
from repro.machine import A100, AMPERE_ALTRA, EPYC_7A53, MI250X
from repro.models import (
    all_models,
    model_by_name,
    portable_models,
    reference_model_for,
)
from repro.sched.affinity import PinPolicy


class TestRegistry:
    def test_all_six_models(self):
        names = {m.name for m in all_models()}
        assert names == {"c-openmp", "cuda", "hip", "kokkos", "julia", "numba"}

    def test_portable_excludes_references(self):
        names = {m.name for m in portable_models()}
        assert names == {"kokkos", "julia", "numba"}

    def test_reference_resolution(self):
        """Sec. V: C/OpenMP for CPUs, CUDA for NVIDIA, HIP for AMD GPUs."""
        assert reference_model_for(EPYC_7A53).name == "c-openmp"
        assert reference_model_for(AMPERE_ALTRA).name == "c-openmp"
        assert reference_model_for(A100).name == "cuda"
        assert reference_model_for(MI250X).name == "hip"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            model_by_name("chapel")


class TestSupportMatrix:
    """The paper's support gaps, one by one."""

    def test_numba_amd_gpu_deprecated(self):
        s = model_by_name("numba").supports(MI250X, Precision.FP64)
        assert not s.supported
        assert "deprecated" in s.reason

    def test_numba_cpu_fp16_unsupported(self):
        s = model_by_name("numba").supports(EPYC_7A53, Precision.FP16)
        assert not s.supported

    def test_numba_gpu_fp16_runs_with_ones(self):
        s = model_by_name("numba").supports(A100, Precision.FP16)
        assert s.supported
        assert "ones" in s.reason

    def test_julia_fp16_everywhere(self):
        julia = model_by_name("julia")
        for target in (A100, MI250X, AMPERE_ALTRA, EPYC_7A53):
            assert julia.supports(target, Precision.FP16).supported

    def test_julia_fp16_degraded_on_x86(self):
        """'Very low performance on Crusher AMD CPUs (not reported)'."""
        julia = model_by_name("julia")
        assert julia.supports(EPYC_7A53, Precision.FP16).degraded
        assert not julia.supports(AMPERE_ALTRA, Precision.FP16).degraded

    def test_kokkos_no_fp16(self):
        kokkos = model_by_name("kokkos")
        for target in (A100, MI250X, EPYC_7A53):
            assert not kokkos.supports(target, Precision.FP16).supported

    def test_vendor_models_own_their_platform(self):
        assert not model_by_name("cuda").supports(MI250X, Precision.FP64).supported
        assert not model_by_name("hip").supports(A100, Precision.FP64).supported
        assert not model_by_name("c-openmp").supports(A100, Precision.FP64).supported

    def test_require_support_raises(self):
        with pytest.raises(UnsupportedConfigurationError):
            model_by_name("numba").require_support(MI250X, Precision.FP64)


class TestCPULowerings:
    def test_c_openmp_vectorizes_to_simd_width(self):
        low = model_by_name("c-openmp").lower_cpu(EPYC_7A53, Precision.FP64)
        assert low.kernel.inner.vector_width == 4   # 256-bit AVX2 fp64
        assert low.kernel.inner.unroll == 4
        assert low.pin is PinPolicy.COMPACT

    def test_c_openmp_fp32_wider(self):
        low = model_by_name("c-openmp").lower_cpu(EPYC_7A53, Precision.FP32)
        assert low.kernel.inner.vector_width == 8

    def test_julia_column_major_jki(self):
        low = model_by_name("julia").lower_cpu(EPYC_7A53, Precision.FP64)
        assert low.kernel.loop_order == "jki"
        assert low.layout is Layout.COL_MAJOR
        assert low.pin is PinPolicy.COMPACT  # JULIA_EXCLUSIVE=1

    def test_julia_fp16_softfloat_on_epyc(self):
        low = model_by_name("julia").lower_cpu(EPYC_7A53, Precision.FP16)
        assert low.kernel.inner.vector_width == 1  # scalar fallback
        assert low.profile.issue_multiplier > 10   # "very low performance"

    def test_julia_fp16_native_on_altra(self):
        low = model_by_name("julia").lower_cpu(AMPERE_ALTRA, Precision.FP16)
        assert low.kernel.inner.vector_width == 8  # native FMLA lanes

    def test_numba_never_pins(self):
        """Even a pin-requesting config cannot pin Numba threads."""
        cfg = RunConfig({"OMP_PROC_BIND": "true", "NUMBA_NUM_THREADS": "64"})
        low = model_by_name("numba").lower_cpu(EPYC_7A53, Precision.FP64, cfg)
        assert low.pin is PinPolicy.NONE
        assert low.threads == 64

    def test_numba_fastmath(self):
        low = model_by_name("numba").lower_cpu(EPYC_7A53, Precision.FP64)
        assert low.kernel.fastmath

    def test_kokkos_cpu_matches_c_structure(self):
        low = model_by_name("kokkos").lower_cpu(EPYC_7A53, Precision.FP64)
        ref = model_by_name("c-openmp").lower_cpu(EPYC_7A53, Precision.FP64)
        assert low.kernel.loop_order == ref.kernel.loop_order

    def test_threads_respect_config(self):
        cfg = RunConfig.julia(17)
        low = model_by_name("julia").lower_cpu(EPYC_7A53, Precision.FP64, cfg)
        assert low.threads == 17


class TestGPULowerings:
    def test_cuda_unrolls_4(self):
        """The nvcc PTX observation (Sec. IV-B)."""
        low = model_by_name("cuda").lower_gpu(A100, Precision.FP64)
        assert low.kernel.inner.unroll == 4
        assert low.launch.x_axis == "j"

    def test_cudajl_unrolls_2(self):
        """The CUDA.jl PTX observation (Sec. IV-B)."""
        low = model_by_name("julia").lower_gpu(A100, Precision.FP64)
        assert low.kernel.inner.unroll == 2
        assert low.launch.x_axis == "i"  # column-major arrays
        assert low.layout is Layout.COL_MAJOR

    def test_numba_rolled_loop(self):
        low = model_by_name("numba").lower_gpu(A100, Precision.FP64)
        assert low.kernel.inner.unroll == 1
        assert low.profile.extra_int_per_iter > 10

    def test_kokkos_cuda_mapping_mismatch(self):
        """LayoutLeft data + x on j: the strided-access failure mode."""
        low = model_by_name("kokkos").lower_gpu(A100, Precision.FP64)
        assert low.layout is Layout.COL_MAJOR
        assert low.launch.x_axis == "j"

    def test_kokkos_hip_mapping_matches(self):
        low = model_by_name("kokkos").lower_gpu(MI250X, Precision.FP64)
        assert low.launch.x_axis == "i"
        assert low.profile.thrash_factor > 1.0

    def test_all_blocks_are_32x32(self):
        """Figs. 6-7: every GPU run uses 32x32 thread blocks."""
        for name, gpu in (("cuda", A100), ("julia", A100), ("numba", A100),
                          ("kokkos", A100), ("hip", MI250X), ("julia", MI250X),
                          ("kokkos", MI250X)):
            low = model_by_name(name).lower_gpu(gpu, Precision.FP64)
            assert (low.launch.block_x, low.launch.block_y) == (32, 32)


class TestFillPolicies:
    def test_julia_generates_fp16_randoms(self):
        low = model_by_name("julia").lower_gpu(A100, Precision.FP16)
        assert low.fill.random_fp16

    def test_numba_fills_ones_for_fp16(self):
        low = model_by_name("numba").lower_gpu(A100, Precision.FP16)
        assert not low.fill.random_fp16


class TestProductivity:
    def test_dynamic_languages_shortest(self):
        """Julia and Numba kernels are the most compact (Sec. V prose);
        line counts come from the paper's actual listings."""
        lines = {m.name: m.productivity(DeviceKind.CPU).total_lines
                 for m in all_models()}
        for dynamic in ("julia", "numba"):
            for compiled in ("c-openmp", "kokkos"):
                assert lines[dynamic] < lines[compiled]

    def test_kernel_lines_match_listings(self):
        from repro.models.listings import kernel_line_count
        for m in all_models():
            for device in (DeviceKind.CPU, DeviceKind.GPU):
                counted = kernel_line_count(m.name, device)
                if counted is not None:
                    assert m.productivity(device).kernel_lines == counted

    def test_kokkos_heaviest_ceremony(self):
        ceremony = {m.name: m.productivity(DeviceKind.GPU).ceremony_lines
                    for m in all_models()}
        assert ceremony["kokkos"] == max(ceremony.values())

    def test_jit_models_have_warmup(self):
        for name in ("julia", "numba"):
            info = model_by_name(name).productivity(DeviceKind.GPU)
            assert info.jit_warmup_seconds > 0
            assert not info.needs_compile_step
