"""CLI tests for ``repro audit`` and the shared ``--format json`` path."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


class TestAuditText:
    def test_full_matrix_exits_clean(self, capsys):
        rc, out = run_cli(capsys, "audit")
        assert rc == 0
        assert "NVIDIA A100" in out and "c-openmp" in out
        assert "audited" in out and "0 errors" in out

    def test_matrix_carries_verdict_cells(self, capsys):
        _, out = run_cli(capsys, "audit", "--device", "gpu",
                         "--precision", "fp64")
        assert "1.00 high" in out        # the reference lanes
        assert "low" in out              # kokkos/numba on A100
        assert "n/a" not in out.split("(cell:")[0] or True

    def test_strict_fails_on_warnings(self, capsys):
        rc, _ = run_cli(capsys, "audit", "--strict")
        assert rc == 1

    def test_findings_name_the_signature_hazards(self, capsys):
        _, out = run_cli(capsys, "audit", "--device", "gpu")
        assert "P001" in out             # kokkos@A100 uncoalesced B
        assert "O003" in out             # numba's rolled strict-FP loop

    def test_model_filter(self, capsys):
        rc, out = run_cli(capsys, "audit", "--models", "julia")
        assert rc == 0
        assert "numba" not in out


class TestAuditJSON:
    def test_schema(self, capsys):
        rc, out = run_cli(capsys, "audit", "--format", "json")
        assert rc == 0
        data = json.loads(out)
        assert data["kind"] == "audit"
        assert data["totals"]["lanes"] == len(data["lanes"])
        assert data["totals"]["errors"] == 0
        audited = [lane for lane in data["lanes"] if not lane["skipped"]]
        assert audited
        for lane in audited:
            assert lane["verdict"] is not None
            v = lane["verdict"]
            assert v["band"] in ("high", "medium", "low", None)
            assert set(v["estimate"]) == {"cycles", "terms", "migration_tax"}
            for d in lane["diagnostics"]:
                assert set(d) == {"code", "severity", "message",
                                  "kernel", "subject"}

    def test_fp16_lanes_have_null_band(self, capsys):
        _, out = run_cli(capsys, "audit", "--format", "json",
                         "--precision", "fp16")
        data = json.loads(out)
        audited = [lane for lane in data["lanes"] if not lane["skipped"]]
        assert audited
        assert all(lane["verdict"]["predicted_efficiency"] is None
                   for lane in audited)

    def test_lint_shares_the_schema(self, capsys):
        rc, out = run_cli(capsys, "lint", "--format", "json")
        assert rc == 0
        data = json.loads(out)
        assert data["kind"] == "lint"
        assert set(data["totals"]) == {"lanes", "skipped", "errors",
                                       "warnings"}
        for lane in data["lanes"]:
            assert "verdict" not in lane     # lint rows carry no verdict


class TestUsageErrors:
    @pytest.mark.parametrize("command", ["lint", "audit"])
    def test_unknown_precision_is_exit_2(self, capsys, command):
        rc = main([command, "--precision", "bogus"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "unknown precision" in captured.err

    def test_unknown_device_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["audit", "--device", "tpu"])
