"""Tests for the environment-style run configuration."""

import pytest

from repro.config import KNOWN_VARIABLES, RunConfig
from repro.errors import ConfigError


class TestConstructors:
    def test_openmp_pins_by_default(self):
        cfg = RunConfig.openmp(64)
        assert cfg.get("OMP_NUM_THREADS") == "64"
        assert cfg.get("OMP_PROC_BIND") == "true"
        assert cfg.get("OMP_PLACES") == "threads"

    def test_openmp_unpinned(self):
        cfg = RunConfig.openmp(8, pin=False)
        assert "OMP_PROC_BIND" not in cfg.env

    def test_julia_exclusive(self):
        cfg = RunConfig.julia(80)
        assert cfg.get("JULIA_NUM_THREADS") == "80"
        assert cfg.get("JULIA_EXCLUSIVE") == "1"

    def test_numba_has_no_pinning_variable(self):
        """The paper: Numba exposes no binding/pinning mechanism."""
        cfg = RunConfig.numba(64)
        pin_vars = [k for k in cfg.env if "BIND" in k or "EXCLUSIVE" in k]
        assert pin_vars == []


class TestAccessors:
    def test_get_int(self):
        assert RunConfig({"X": "7"}).get_int("X", 1) == 7
        assert RunConfig({}).get_int("X", 5) == 5

    def test_get_int_rejects_garbage(self):
        with pytest.raises(ConfigError):
            RunConfig({"X": "lots"}).get_int("X", 1)

    def test_get_int_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            RunConfig({"X": "0"}).get_int("X", 1)

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("close", True), ("spread", True),
        ("0", False), ("false", False), ("", False),
    ])
    def test_get_bool(self, raw, expected):
        assert RunConfig({"B": raw}).get_bool("B") is expected

    def test_get_bool_rejects_garbage(self):
        with pytest.raises(ConfigError):
            RunConfig({"B": "maybe"}).get_bool("B")


class TestSemantics:
    def test_threads_for_each_family(self):
        cfg = RunConfig({"OMP_NUM_THREADS": "4", "JULIA_NUM_THREADS": "8",
                         "NUMBA_NUM_THREADS": "16"})
        assert cfg.threads_for("openmp", 64) == 4
        assert cfg.threads_for("kokkos", 64) == 4
        assert cfg.threads_for("julia", 64) == 8
        assert cfg.threads_for("numba", 64) == 16

    def test_threads_default_all_cores(self):
        assert RunConfig().threads_for("openmp", 64) == 64

    def test_threads_unknown_family(self):
        with pytest.raises(ConfigError):
            RunConfig().threads_for("rust", 4)

    def test_pinning_numba_always_false(self):
        cfg = RunConfig({"OMP_PROC_BIND": "true", "JULIA_EXCLUSIVE": "1"})
        assert cfg.pinning_for("openmp") is True
        assert cfg.pinning_for("julia") is True
        assert cfg.pinning_for("numba") is False

    def test_pinning_defaults_off(self):
        assert RunConfig().pinning_for("openmp") is False
        assert RunConfig().pinning_for("julia") is False


class TestHygiene:
    def test_typo_detection(self):
        warnings = RunConfig({"OMP_NUM_THREAD": "4"}).validate()
        assert any("OMP_NUM_THREADS" in w for w in warnings)

    def test_known_variables_clean(self):
        cfg = RunConfig({k: "1" for k in KNOWN_VARIABLES})
        assert cfg.validate() == []

    def test_merged_overrides(self):
        cfg = RunConfig({"A": "1"}).merged({"A": "2", "B": "3"})
        assert cfg.get("A") == "2"
        assert cfg.get("B") == "3"

    def test_len_and_iter(self):
        cfg = RunConfig({"A": "1", "B": "2"})
        assert len(cfg) == 2
        assert sorted(cfg) == ["A", "B"]
