"""E5 — Fig. 6: simple GEMM on the Crusher MI250X (32x32 blocks).

Asserts: HIP best at double precision with Julia close and Kokkos behind;
Julia slightly above HIP at single precision; the repeatable Kokkos
slowdown at the largest size; FP16 no better than FP32 for Julia.
"""

import pytest

from repro.harness import fig6


@pytest.fixture(scope="module")
def result(sweep):
    return fig6(sweep)


def _mean(rs, model):
    xs, ys = rs.series(model)
    return sum(ys) / len(ys)


def test_fig6_regenerate(benchmark, sweep, emit):
    fig = benchmark.pedantic(fig6, args=(sweep,), rounds=1, iterations=1)
    emit(fig.render())


def test_fig6a_hip_wins_double(result):
    rs = result.panels["a: double"]
    hip = _mean(rs, "hip")
    assert hip > _mean(rs, "julia") > _mean(rs, "kokkos")


def test_fig6a_constant_overheads(result):
    """'...both of which reach competitive levels but still do not match
    HIP ... because the overheads introduced appear to be constant.'"""
    rs = result.panels["a: double"]
    xs, _ = rs.series("julia")
    effs = [rs.cell("julia", x).gflops / rs.cell("hip", x).gflops
            for x in xs if x >= 4096]
    assert max(effs) - min(effs) < 0.06


def test_fig6a_kokkos_largest_size_slowdown(result):
    rs = result.panels["a: double"]
    xs, ys = rs.series("kokkos")
    hip_eff = [ys[i] / rs.cell("hip", xs[i]).gflops for i in range(len(xs))]
    assert hip_eff[-1] < hip_eff[1] * 0.95


def test_fig6b_julia_slightly_above_hip(result):
    """'Julia with AMDGPU.jl shows slightly better performance than the
    vendor HIP implementation' (single precision)."""
    rs = result.panels["b: single"]
    ratio = _mean(rs, "julia") / _mean(rs, "hip")
    assert 1.0 < ratio < 1.12


def test_fig6b_kokkos_consistent_decrease(result):
    rs = result.panels["b: single"]
    assert _mean(rs, "kokkos") < 0.75 * _mean(rs, "hip")


def test_fig6c_fp16_no_noticeable_improvement(result):
    """'No noticeable improvements are shown when compared to
    single-precision runs.'"""
    g16 = _mean(result.panels["c: half (Julia)"], "julia")
    g32 = _mean(result.panels["b: single"], "julia")
    assert g16 < 1.2 * g32
