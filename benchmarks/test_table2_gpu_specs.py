"""E2 — Table II: GPU experiment specs."""

from repro.core.types import Precision
from repro.harness import table2
from repro.machine import A100, MI250X


def test_table2_gpu_specs(benchmark, emit):
    out = benchmark(table2)
    emit(out)
    assert "nvcc v11.5.1" in out and "hipcc v14.0.0" in out
    assert "Not supported" in out  # Numba on AMD
    # datasheet anchors behind the table
    assert abs(A100.peak_gflops(Precision.FP64) - 9746) < 100
    assert abs(MI250X.peak_gflops(Precision.FP64) - 23936) < 250
