"""E7 — Table III: performance efficiencies and the Phi_M metric.

The headline quantitative reproduction: every published efficiency within
+/-0.05 and every Phi_M within 0.03, plus the paper's ranking
(Julia > Kokkos > Python/Numba) and the metric-definition cross-check.
"""

import pytest

from repro.core.metrics import metric_comparison, phi_paper
from repro.core.types import Precision
from repro.harness import PAPER_PHI, PAPER_TABLE3, table3

PLATFORMS = ("Epyc 7A53", "Ampere Altra", "MI250x", "A100")


@pytest.fixture(scope="module")
def computed(sweep):
    return table3(sweep)


def test_table3_regenerate(benchmark, sweep, emit):
    result = benchmark.pedantic(table3, args=(sweep,), rounds=1, iterations=1)
    emit(result.render())


@pytest.mark.parametrize("precision", [Precision.FP64, Precision.FP32])
@pytest.mark.parametrize("model", ["kokkos", "julia", "numba"])
def test_efficiencies_within_tolerance(computed, precision, model):
    row = computed.row(model, precision)
    for platform in PLATFORMS:
        published = PAPER_TABLE3[precision][model][platform]
        ours = row.efficiencies.get(platform)
        if published is None:
            assert ours is None
        else:
            assert ours == pytest.approx(published, abs=0.05), (
                f"{model}/{platform}: paper {published}, ours {ours:.3f}")


@pytest.mark.parametrize("precision", [Precision.FP64, Precision.FP32])
def test_phi_values_and_ranking(computed, precision):
    phis = {m: computed.row(m, precision).phi
            for m in ("kokkos", "julia", "numba")}
    for model, phi in phis.items():
        assert phi == pytest.approx(PAPER_PHI[precision][model], abs=0.03)
    assert phis["julia"] > phis["kokkos"] > phis["numba"]


def test_numba_phi_counts_unsupported_as_zero(computed):
    """The paper's |T|=4 convention: the AMD '-' contributes 0."""
    row = computed.row("numba", Precision.FP64)
    effs = [row.efficiencies.get(p) for p in PLATFORMS]
    assert None in effs
    assert row.phi == pytest.approx(phi_paper(effs))


def test_metric_definitions_disagree_for_numba(computed):
    """Under Pennycook's strict PP, Numba scores 0 (fails on one platform
    in the set); under the paper's metric it scores 0.35 — the repo makes
    the metric choice explicit."""
    row = computed.row("numba", Precision.FP64)
    effs = [row.efficiencies.get(p) for p in PLATFORMS]
    cmp = metric_comparison(effs)
    assert cmp["pp_pennycook"] == 0.0
    assert cmp["phi_paper"] > 0.3
    assert cmp["phi_marowka"] > cmp["phi_paper"]
