"""Shared fixtures for the benchmark suite.

Every ``test_*`` here is a pytest-benchmark target that regenerates one
table or figure of the paper (see DESIGN.md's per-experiment index).  Run
with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables and charts, or ``--sweep=paper`` to use the paper's
full 1024..20480 size sweep instead of the quick default.
"""

import pytest

from repro.harness import PAPER_SIZES, QUICK_SIZES


def pytest_addoption(parser):
    parser.addoption(
        "--sweep", choices=("quick", "paper"), default="quick",
        help="matrix-size sweep to use for figure/table regeneration",
    )


@pytest.fixture(scope="session")
def sweep(request):
    if request.config.getoption("--sweep") == "paper":
        return PAPER_SIZES
    return QUICK_SIZES


@pytest.fixture(scope="session")
def emit():
    """Print a regenerated artifact under ``-s`` without cluttering capture."""
    def _emit(text: str) -> None:
        print()
        print(text)
    return _emit
