"""E10 — ablation: GPU launch configuration (block size and index mapping).

Sec. II-b: Kokkos' template-time configuration "hinders the deployment of
kernel-specific optimizations (e.g., select the appropriate values for a
number of blocks and threads per block)".  This ablation sweeps block
shapes and thread->index mappings on the A100 to show (1) the paper's
32x32 choice is a sound default, and (2) a mapping that disagrees with
the data layout — the modelled Kokkos/CUDA failure — costs ~4x, dwarfing
any block-size effect.
"""

import pytest

from repro.core.types import Layout, MatrixShape, Precision
from repro.gpu import LaunchConfig, paper_launch, simulate_gpu_kernel
from repro.ir import builder
from repro.ir.passes import UnrollInnerLoop
from repro.machine import A100

SHAPE = MatrixShape.square(8192)


def run(launch: LaunchConfig, layout: Layout = Layout.ROW_MAJOR) -> float:
    kernel = builder.gpu_thread_per_element("gemm", Precision.FP64, layout)
    kernel = UnrollInnerLoop(4).run(kernel)
    t = simulate_gpu_kernel(kernel, launch, A100, SHAPE)
    return t.gflops(SHAPE)


BLOCKS = [(8, 8), (16, 16), (32, 8), (32, 32), (64, 16)]


def test_blocksize_sweep(benchmark, emit):
    def sweep():
        return [(bx, by, run(LaunchConfig(bx, by, "j"))) for bx, by in BLOCKS]
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["block      GFLOP/s"]
    for bx, by, gf in rows:
        lines.append(f"{bx:3d}x{by:<3d}   {gf:8.0f}")
    emit("\n".join(lines))


def test_paper_block_near_best():
    """32x32 achieves within 15% of the best swept configuration."""
    best = max(run(LaunchConfig(bx, by, "j")) for bx, by in BLOCKS)
    assert run(paper_launch("j")) > 0.85 * best


def test_block_size_insensitive_when_issue_bound():
    """A finding of the reproduction (EXPERIMENTS.md): for this naive
    kernel every swept block keeps >= 50% occupancy, and the kernel is
    issue/L2-bound, so block shape moves performance by under 10%.  Block
    choice is therefore *not* a candidate explanation for the 4x
    Kokkos/CUDA gap — supporting the mapping-mismatch mechanism instead."""
    perfs = [run(LaunchConfig(bx, by, "j")) for bx, by in BLOCKS]
    assert max(perfs) / min(perfs) < 1.1


def test_small_blocks_reduce_occupancy_headroom():
    """Small blocks do halve resident threads (the block-slot limit), which
    is the latency-hiding headroom a less regular kernel would need."""
    from repro.gpu import occupancy
    from repro.machine import A100 as _a100
    assert occupancy(_a100, 32).fraction(_a100) == pytest.approx(0.5)
    assert occupancy(_a100, 1024).fraction(_a100) == pytest.approx(1.0)


def test_mapping_mismatch_dwarfs_block_choice():
    """x on the column index of column-major data (the Kokkos/CUDA case)
    loses far more than any block-size choice can win back."""
    matched = run(paper_launch("i"), Layout.COL_MAJOR)
    mismatched = run(paper_launch("j"), Layout.COL_MAJOR)
    block_spread = (max(run(LaunchConfig(bx, by, "j")) for bx, by in BLOCKS)
                    / min(run(LaunchConfig(bx, by, "j")) for bx, by in BLOCKS))
    assert matched / mismatched > block_spread
    assert matched / mismatched > 3.0
