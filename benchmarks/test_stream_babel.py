"""E16 — BabelStream-style memory-bandwidth suite (extension).

The memory-bound complement to the GEMM study, after Lin &
McIntosh-Smith's Julia portability work the paper cites as [24]: the five
STREAM kernels across the same model/machine grid, plus a real host
measurement of the NumPy kernels.

The structural finding the suite pins: when the kernel is DRAM-bound,
programming-model portability is nearly free (every supported model
within ~5% of the vendor on GPUs at STREAM sizes) — the exact opposite of
the GEMM picture, where codegen and runtime quality decide everything.
"""

import pytest

from repro.core.types import Precision
from repro.machine import A100, AMPERE_ALTRA, EPYC_7A53, MI250X
from repro.stream import (
    StreamKernel,
    measure_host_stream,
    simulate_stream,
    stream_table,
)

N = 1 << 25


def test_e16_stream_tables(benchmark, emit):
    def build():
        out = []
        out.append(stream_table(EPYC_7A53,
                                ("c-openmp", "kokkos", "julia", "numba"), N))
        out.append(stream_table(AMPERE_ALTRA,
                                ("c-openmp", "kokkos", "julia", "numba"), N))
        out.append(stream_table(MI250X, ("hip", "kokkos", "julia", "numba"), N))
        out.append(stream_table(A100, ("cuda", "kokkos", "julia", "numba"), N))
        return out
    tables = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("\n\n".join(t.render() for t in tables))


def test_gpu_models_converge_at_stream_sizes():
    vendor = simulate_stream("cuda", A100, StreamKernel.TRIAD, N)
    for model in ("kokkos", "julia"):
        other = simulate_stream(model, A100, StreamKernel.TRIAD, N)
        assert other.bandwidth_gbs == pytest.approx(vendor.bandwidth_gbs,
                                                    rel=0.02), model


def test_contrast_with_gemm_portability():
    """STREAM efficiency of the *worst* supported model beats the GEMM
    efficiency of the *best* portable model on the A100 — memory-bound
    kernels are the easy case for portability."""
    stream_effs = []
    vendor = simulate_stream("cuda", A100, StreamKernel.TRIAD, N)
    for model in ("kokkos", "julia", "numba"):
        t = simulate_stream(model, A100, StreamKernel.TRIAD, N)
        stream_effs.append(t.bandwidth_gbs / vendor.bandwidth_gbs)
    # GEMM A100 fp64 efficiencies (Table III): best portable is Julia 0.867
    assert min(stream_effs) > 0.867


def test_dot_costs_an_extra_launch():
    copy = simulate_stream("cuda", A100, StreamKernel.COPY, 1 << 18)
    dot = simulate_stream("cuda", A100, StreamKernel.DOT, 1 << 18)
    assert dot.seconds > copy.seconds


def test_real_host_stream(benchmark, emit):
    """The genuinely measured half: NumPy STREAM on this machine."""
    result = benchmark.pedantic(measure_host_stream,
                                kwargs={"n": 1 << 22, "reps": 3},
                                rounds=1, iterations=1)
    lines = ["host STREAM (NumPy), n=2^22 fp64:"]
    for kernel, bw in result.items():
        lines.append(f"  {kernel.value:6s} {bw:7.1f} GB/s")
    emit("\n".join(lines))
    assert all(bw > 0.5 for bw in result.values())
    # copy involves no arithmetic: it should be at least as fast as triad
    assert result[StreamKernel.COPY] >= 0.5 * result[StreamKernel.TRIAD]
