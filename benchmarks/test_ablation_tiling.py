"""E19 — ablation: what the naive baseline leaves on the table.

The paper motivates its hand-rolled kernels as "a performance lower-bound
point of reference" (Sec. I).  This ablation quantifies the headroom with
the tiled-GEMM model (`repro.sim.blocking`): arithmetic intensity grows
linearly with the tile size, lifting the kernel decisively into the
compute-bound regime, and the predicted tile-size sweet spot matches what
the *real* blocked kernel measures on this host.
"""

import time

import numpy as np
import pytest

from repro.arrays.random import FillPolicy, make_gemm_operands
from repro.core.types import Layout, MatrixShape, Precision
from repro.kernels import gemm_blocked, reference_gemm
from repro.machine import EPYC_7A53
from repro.sim.blocking import (
    best_tile_for,
    blocked_gemm_estimate,
    blocked_traffic_bytes,
)

SHAPE = MatrixShape.square(8192)
TILES = (8, 32, 64, 128, 256)


def test_e19_tiling_sweep(benchmark, emit):
    def sweep():
        rows = []
        for tile in TILES:
            est = blocked_gemm_estimate(EPYC_7A53, SHAPE, tile)
            rows.append((tile, est.arithmetic_intensity,
                         est.gflops(SHAPE), est.bound))
        return rows
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'tile':>5s} {'AI (f/B)':>9s} {'GFLOP/s':>8s}  regime"]
    for tile, ai, gf, bound in rows:
        lines.append(f"{tile:5d} {ai:9.1f} {gf:8.0f}  {bound}")
    emit("\n".join(lines))


def test_intensity_grows_linearly_with_tile():
    ai = [blocked_gemm_estimate(EPYC_7A53, SHAPE, t).arithmetic_intensity
          for t in (16, 32, 64)]
    assert ai[1] / ai[0] == pytest.approx(2.0, rel=0.1)
    assert ai[2] / ai[1] == pytest.approx(2.0, rel=0.1)


def test_large_tiles_clamped_by_cache():
    """Beyond the cache-fitting tile, the traffic stops improving."""
    fit = best_tile_for(EPYC_7A53, Precision.FP64)
    at_fit = blocked_gemm_estimate(EPYC_7A53, SHAPE, fit)
    beyond = blocked_gemm_estimate(EPYC_7A53, SHAPE, fit * 4)
    assert beyond.dram_bytes == pytest.approx(at_fit.dram_bytes)


def test_traffic_formula_exact_for_divisible_shapes():
    shape = MatrixShape(256, 256, 256)
    got = blocked_traffic_bytes(shape, 64, Precision.FP64)
    tiles = 4 * 4 * 4
    expected = tiles * 2 * 64 * 64 * 8 + 2 * 256 * 256 * 8
    assert got == expected


def test_blocking_beats_naive_baseline():
    """Tiled at the cache-fitting size: compute-bound at ~half of SIMD
    peak, well above the naive ~1 TF of Fig. 4's kernels."""
    fit = best_tile_for(EPYC_7A53, Precision.FP64)
    est = blocked_gemm_estimate(EPYC_7A53, SHAPE, fit)
    assert est.bound == "compute"
    assert est.gflops(SHAPE) > 1500  # naive C/OpenMP sits near 1020


def test_real_blocked_kernel_prefers_moderate_tiles(benchmark):
    """The measured sweet spot of the real kernel is an interior tile
    size — tiny tiles pay slicing overhead, huge tiles spill cache —
    mirroring the model's clamp."""
    n = 384
    a, b, c = make_gemm_operands(n, n, n, Precision.FP64, Layout.ROW_MAJOR,
                                 FillPolicy(seed=7))
    expected = reference_gemm(a, b, Precision.FP64)

    def best_time(tile):
        best = float("inf")
        for _ in range(3):
            c[:] = 0.0
            t0 = time.perf_counter()
            gemm_blocked(a, b, c, tile)
            best = min(best, time.perf_counter() - t0)
        np.testing.assert_allclose(c, expected, rtol=1e-9)
        return best

    times = benchmark.pedantic(
        lambda: {tile: best_time(tile) for tile in (4, 96, n)},
        rounds=1, iterations=1)
    # interior tile beats the fully-degenerate tiny tiling
    assert times[96] < times[4]
