"""E4 — Fig. 5: Wombat multithreaded CPU performance (80 Arm cores).

Asserts the Arm-specific findings: the Kokkos/OpenMP slowdown, Julia on
par with the vendor compiler, and the seamless Julia FP16 panel.
"""

import pytest

from repro.harness import fig5


@pytest.fixture(scope="module")
def result(sweep):
    return fig5(sweep)


def _mean(rs, model):
    xs, ys = rs.series(model)
    return sum(ys) / len(ys)


def test_fig5_regenerate(benchmark, sweep, emit):
    fig = benchmark.pedantic(fig5, args=(sweep,), rounds=1, iterations=1)
    emit(fig.render())


def test_fig5a_kokkos_slowdown(result):
    """'Kokkos, which is using the OpenMP back end, experiences a slowdown
    in both cases.'"""
    for panel in ("a: double", "b: single"):
        rs = result.panels[panel]
        assert _mean(rs, "kokkos") < 0.9 * _mean(rs, "c-openmp"), panel


def test_fig5a_julia_on_par(result):
    """'Julia's performance is almost on par with the vendor OpenMP.'"""
    rs = result.panels["a: double"]
    assert _mean(rs, "julia") > 0.85 * _mean(rs, "c-openmp")


def test_fig5b_numba_fp32_gap(result):
    rs = result.panels["b: single"]
    assert _mean(rs, "numba") < 0.5 * _mean(rs, "c-openmp")


def test_fig5c_julia_fp16_native(result):
    """'The Julia threads implementation on Arm worked seamlessly and
    provided the expected levels of performance' — native FMLA gives a
    genuine speedup over FP32, unlike every other CPU path."""
    g16 = _mean(result.panels["c: half (Julia)"], "julia")
    g32 = _mean(result.panels["b: single"], "julia")
    assert g16 > 1.5 * g32
    assert result.panels["c: half (Julia)"].models() == ["julia"]
