"""E1 — Table I: CPU experiment specs.

Regenerates the configuration table and checks it against the machine
catalog (so the printed table can never drift from the simulated specs).
"""

from repro.harness import table1
from repro.machine import AMPERE_ALTRA, EPYC_7A53


def test_table1_cpu_specs(benchmark, emit):
    out = benchmark(table1)
    emit(out)
    assert "ArmClang22" in out and "AMDClang14" in out
    # catalog consistency with the rendered table
    assert EPYC_7A53.cores == 64 and EPYC_7A53.numa_domains == 4
    assert AMPERE_ALTRA.cores == 80 and AMPERE_ALTRA.numa_domains == 1
