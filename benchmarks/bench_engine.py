"""Sweep-engine throughput: cells/sec for each executor, cold and warm.

Times one experiment matrix through the three sweep executors — the
serial reference loop, the in-process thread pool, and the sharded
process pool (``--engine process``) — each against a cold private cache
and again warm, and writes the numbers to ``BENCH_engine.json`` (re-run
via ``make bench-engine`` after touching the engine to see regressions).

Two caveats the payload records rather than hides: the host CPU count
bounds any possible fan-out speedup (a 1-core CI box cannot show one),
and the process engine's per-worker start-up cost is part of its cold
number on purpose — that overhead is the price of shared-nothing
workers and belongs in the trajectory.

Standalone on purpose: ``python benchmarks/bench_engine.py`` works with
or without the package installed.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.core.types import DeviceKind, Precision          # noqa: E402
from repro.harness.engine import ResultCache, SweepEngine   # noqa: E402
from repro.harness.experiment import Experiment             # noqa: E402


def bench_experiment() -> Experiment:
    """A mid-sized CPU sweep: 3 models x 3 sizes = 9 cells."""
    return Experiment(
        exp_id="bench-engine", title="engine throughput benchmark",
        node_name="Crusher", device=DeviceKind.CPU, precision=Precision.FP64,
        models=("c-openmp", "julia", "numba"), sizes=(256, 512, 1024),
        threads=64, reps=5,
    )


def _engine(mode: str, cache: ResultCache, jobs: int) -> SweepEngine:
    if mode == "serial":
        return SweepEngine(cache=cache, parallel=False)
    if mode == "thread":
        return SweepEngine(cache=cache, parallel=True, max_workers=jobs)
    return SweepEngine(cache=cache, parallel=True, max_workers=jobs,
                       mode="process")


def _time_sweep(mode: str, jobs: int, reps: int,
                workdir: str) -> "dict[str, object]":
    """Best-of-``reps`` cold and warm wall times for one executor."""
    exp = bench_experiment()
    cells = len(exp.models) * len(exp.sizes)
    cold_best = warm_best = float("inf")
    for rep in range(reps):
        root = os.path.join(workdir, f"{mode}-{rep}")
        cache = ResultCache(root)
        engine = _engine(mode, cache, jobs)
        t0 = time.perf_counter()
        engine.run(exp)
        cold_best = min(cold_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        engine.run(exp)
        warm_best = min(warm_best, time.perf_counter() - t0)
        shutil.rmtree(root, ignore_errors=True)
    return {
        "cells": cells,
        "jobs": jobs,
        "cold_seconds": round(cold_best, 6),
        "cold_cells_per_s": round(cells / cold_best, 2),
        "warm_seconds": round(warm_best, 6),
        "warm_cells_per_s": round(cells / warm_best, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions; best-of is recorded (default 3)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="pool width for thread/process executors "
                             "(default: min(4, cpu count), floor 2 so "
                             "the pools engage even on 1-core hosts)")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path (default BENCH_engine.json)")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    jobs = args.jobs or max(2, min(4, cpus))
    payload = {"benchmark": "engine",
               "python": platform.python_version(),
               "host_cpus": cpus,
               "reps": args.reps,
               "engines": {}}
    modes = ["serial", "thread"]
    if "fork" in multiprocessing.get_all_start_methods():
        modes.append("process")
    else:
        payload["engines"]["process"] = {
            "skipped": "fork start method unavailable on this platform"}
    workdir = tempfile.mkdtemp(prefix="bench-engine-")
    try:
        for mode in modes:
            result = _time_sweep(mode, 1 if mode == "serial" else jobs,
                                 args.reps, workdir)
            payload["engines"][mode] = result
            print(f"{mode:8s} cold {result['cold_cells_per_s']:>8} cells/s"
                  f"   warm {result['warm_cells_per_s']:>8} cells/s"
                  f"   (x{result['jobs']})")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
