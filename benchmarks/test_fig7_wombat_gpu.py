"""E6 — Fig. 7: simple GEMM on the Wombat NVIDIA A100 (32x32 blocks).

Asserts: CUDA first with CUDA.jl trailing by a constant factor (the
unroll-2 PTX finding); Kokkos and Numba consistently underperforming; the
big vendor FP32 jump vs ~10% gains elsewhere; FP16 no faster than FP32.
"""

import pytest

from repro.harness import fig7


@pytest.fixture(scope="module")
def result(sweep):
    return fig7(sweep)


def _mean(rs, model):
    xs, ys = rs.series(model)
    return sum(ys) / len(ys)


def test_fig7_regenerate(benchmark, sweep, emit):
    fig = benchmark.pedantic(fig7, args=(sweep,), rounds=1, iterations=1)
    emit(fig.render())


def test_fig7a_full_ordering(result):
    rs = result.panels["a: double"]
    assert (_mean(rs, "cuda") > _mean(rs, "julia")
            > _mean(rs, "kokkos") > _mean(rs, "numba"))


def test_fig7a_julia_constant_overhead(result):
    """'Julia using CUDA.jl has a constant overhead when compared to the
    vendor-provided CUDA implementation.'"""
    rs = result.panels["a: double"]
    xs, _ = rs.series("julia")
    effs = [rs.cell("julia", x).gflops / rs.cell("cuda", x).gflops
            for x in xs if x >= 4096]
    assert max(effs) - min(effs) < 0.05
    assert 0.8 < sum(effs) / len(effs) < 0.92


def test_fig7a_kokkos_numba_underperform(result):
    """'Kokkos and Python/Numba using a CUDA back end consistently
    underperform.'"""
    rs = result.panels["a: double"]
    cuda = _mean(rs, "cuda")
    assert _mean(rs, "kokkos") < 0.35 * cuda
    assert _mean(rs, "numba") < 0.2 * cuda


def test_fig7b_vendor_jump_others_ten_percent(result):
    """'the performance of the vendor-provided CUDA implementation
    increases significantly, whereas other implementations ... show small
    performance increases of around 10%'."""
    d, s = result.panels["a: double"], result.panels["b: single"]
    assert _mean(s, "cuda") / _mean(d, "cuda") > 1.6
    for model in ("julia", "kokkos", "numba"):
        gain = _mean(s, model) / _mean(d, model)
        assert 0.95 < gain < 1.5, model


def test_fig7c_half_precision_no_gains(result):
    """'we observed no performance gains over the single-precision
    counterparts' — for both Julia and Numba."""
    rs16 = result.panels["c: half (Julia, Numba)"]
    rs32 = result.panels["b: single"]
    for model in ("julia", "numba"):
        assert _mean(rs16, model) < 1.15 * _mean(rs32, model), model
