"""E14 — strong scaling over thread counts (the abstract's "single node
scalability" cut).

Fixed 4096^3 problem, threads swept 1..cores on both CPUs.  Pinned models
scale near-ideally on both machines; the unpinned Numba runtime loses
~23% of parallel efficiency on the 4-NUMA EPYC as the node saturates, and
nothing on the single-NUMA Altra — the scaling-study view of the paper's
Fig. 4 vs Fig. 5 asymmetry.
"""

import pytest

from repro.core.types import MatrixShape, Precision
from repro.harness import default_thread_counts, thread_scaling
from repro.machine import AMPERE_ALTRA, EPYC_7A53

SHAPE = MatrixShape.square(4096)
MODELS = ("c-openmp", "kokkos", "julia", "numba")


@pytest.fixture(scope="module")
def curves():
    out = {}
    for cpu in (EPYC_7A53, AMPERE_ALTRA):
        for model in MODELS:
            out[(cpu.name, model)] = thread_scaling(
                model, cpu, SHAPE, Precision.FP64)
    return out


def test_e14_scaling_sweep(benchmark, emit, curves):
    def render():
        parts = []
        for (cpu, model), r in curves.items():
            parts.append(r.render())
        return "\n\n".join(parts)
    out = benchmark(render)
    emit(out)


@pytest.mark.parametrize("model", ["c-openmp", "kokkos", "julia"])
@pytest.mark.parametrize("cpu", [EPYC_7A53, AMPERE_ALTRA],
                         ids=["epyc", "altra"])
def test_pinned_models_scale_nearly_ideally(curves, cpu, model):
    r = curves[(cpu.name, model)]
    assert r.efficiency_at_full() > 0.9


def test_numba_efficiency_loss_on_epyc(curves):
    r = curves[(EPYC_7A53.name, "numba")]
    assert r.efficiency_at_full() == pytest.approx(1 / 1.30, abs=0.05)


def test_numba_fine_on_altra(curves):
    r = curves[(AMPERE_ALTRA.name, "numba")]
    assert r.efficiency_at_full() > 0.9


def test_speedup_monotone_everywhere(curves):
    for r in curves.values():
        speedups = [p.speedup for p in r.points]
        assert speedups == sorted(speedups), r.model


def test_small_problem_scaling_saturates():
    """Fork/join overhead caps speed-up for tiny problems — the reason the
    paper sweeps *large* matrices."""
    tiny = thread_scaling("c-openmp", EPYC_7A53, MatrixShape.square(128))
    big = thread_scaling("c-openmp", EPYC_7A53, SHAPE)
    assert tiny.efficiency_at_full() < big.efficiency_at_full()
