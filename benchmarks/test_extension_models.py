"""E12/E13 — extension-model benchmarks: PyOMP and KernelAbstractions.jl.

The two programming models the paper cites but does not benchmark:

* **E12 PyOMP** [32]: Numba's code generator under the OpenMP runtime.
  Quantifies how much of Python/Numba's CPU gap is the *runtime* (no
  pinning) versus the *code generator*: on the 4-NUMA EPYC, PyOMP
  recovers the entire migration share, leaving only the codegen residual
  — matching the cited "on par with C" trajectory.
* **E13 KernelAbstractions.jl** [55]: Julia's single-source portable GPU
  layer, whose cost over the native CUDA.jl/AMDGPU.jl kernels the paper
  leaves to "future work".  Single-digit-percent penalty on both GPUs,
  while collapsing the CUDA.jl/AMDGPU.jl two-source divergence to zero.
"""

import pytest

from repro.core.types import DeviceKind, MatrixShape, Precision
from repro.gpu.warp_sim import simulate_gpu_kernel
from repro.harness import Experiment, run_experiment
from repro.machine import A100, MI250X
from repro.models import model_by_name


@pytest.fixture(scope="module")
def cpu_results(sweep):
    exp = Experiment(
        exp_id="e12-pyomp",
        title="PyOMP vs Numba vs C/OpenMP on Crusher CPU",
        node_name="Crusher", device=DeviceKind.CPU, precision=Precision.FP64,
        models=("c-openmp", "pyomp", "numba"), sizes=tuple(sweep), threads=64,
    )
    return run_experiment(exp)


def _mean(rs, model):
    xs, ys = rs.series(model)
    return sum(ys) / len(ys)


def test_e12_pyomp_sweep(benchmark, sweep, emit, cpu_results):
    from repro.harness.report import render_result_set

    def regen():
        return render_result_set(cpu_results, chart=False)

    out = benchmark(regen)
    emit(out)


def test_e12_pyomp_beats_numba_on_numa(cpu_results):
    """Pinning via the OpenMP runtime recovers the migration tax."""
    ratio = _mean(cpu_results, "pyomp") / _mean(cpu_results, "numba")
    assert ratio == pytest.approx(1.30, abs=0.07)


def test_e12_remaining_gap_is_codegen(cpu_results):
    """PyOMP's residual vs C/OpenMP equals Numba's codegen factor (1.40):
    the runtime share of the gap is fully accounted for."""
    eff = _mean(cpu_results, "pyomp") / _mean(cpu_results, "c-openmp")
    assert eff == pytest.approx(1 / 1.40, abs=0.05)


SHAPE = MatrixShape.square(8192)


def _gpu_time(model_name, gpu, precision=Precision.FP64):
    low = model_by_name(model_name).lower_gpu(gpu, precision)
    return simulate_gpu_kernel(low.kernel, low.launch, gpu, SHAPE,
                               low.profile).total_seconds


def test_e13_ka_sweep(benchmark, emit):
    def sweep_fn():
        rows = []
        for gpu in (A100, MI250X):
            t_native = _gpu_time("julia", gpu)
            t_ka = _gpu_time("kernelabstractions", gpu)
            rows.append((gpu.name, SHAPE.flops / t_native / 1e9,
                         SHAPE.flops / t_ka / 1e9, t_ka / t_native))
        return rows
    rows = benchmark.pedantic(sweep_fn, rounds=1, iterations=1)
    lines = ["gpu                  native-Julia GF  KA.jl GF  penalty"]
    for name, nat, ka, pen in rows:
        lines.append(f"{name:20s} {nat:15.0f} {ka:9.0f} {pen:8.3f}x")
    emit("\n".join(lines))


@pytest.mark.parametrize("gpu", [A100, MI250X], ids=["a100", "mi250x"])
def test_e13_ka_single_digit_penalty(gpu):
    penalty = _gpu_time("kernelabstractions", gpu) / _gpu_time("julia", gpu)
    assert 1.0 <= penalty < 1.10


def test_e13_ka_zero_code_divergence():
    """The portability payoff: one source for both vendors."""
    from repro.core.productivity import code_divergence
    from repro.core.types import DeviceKind as DK

    ka = model_by_name("kernelabstractions")
    info = ka.productivity(DK.GPU)
    # same source on both targets -> divergence of the variant set is 0
    assert code_divergence([info.total_lines, info.total_lines]) == 0.0
