"""E3 — Fig. 4: Crusher multithreaded CPU performance (64 threads, 4 NUMA).

Regenerates both panels and asserts the paper's qualitative findings:
Kokkos and Julia comparable with the vendor C/OpenMP; Python/Numba behind.
"""

import pytest

from repro.harness import fig4


@pytest.fixture(scope="module")
def result(sweep):
    return fig4(sweep)


def _mean(rs, model):
    xs, ys = rs.series(model)
    return sum(ys) / len(ys)


def test_fig4_regenerate(benchmark, sweep, emit):
    fig = benchmark.pedantic(fig4, args=(sweep,), rounds=1, iterations=1)
    emit(fig.render())


def test_fig4a_double_orderings(result):
    rs = result.panels["a: double"]
    ref = _mean(rs, "c-openmp")
    # "Kokkos/OpenMP and Julia threads perform comparably with the vendor
    # ... implementation, whereas Python/Numba is still behind"
    assert _mean(rs, "kokkos") > 0.9 * ref
    assert _mean(rs, "julia") > 0.85 * ref
    assert _mean(rs, "numba") < 0.65 * ref


def test_fig4b_single_preserves_ordering(result):
    rs = result.panels["b: single"]
    ref = _mean(rs, "c-openmp")
    assert _mean(rs, "kokkos") > 0.9 * ref
    assert _mean(rs, "numba") < 0.75 * ref


def test_fig4_single_doubles_double(result):
    for model in ("c-openmp", "kokkos", "julia"):
        gain = (_mean(result.panels["b: single"], model)
                / _mean(result.panels["a: double"], model))
        assert 1.6 < gain < 2.3, model
