"""E11 — real-kernel anchor: measured GEMM on this host.

Everything else in the suite times a *simulated* machine; this file runs
the actual, executable kernels with pytest-benchmark so the repository
carries at least one set of genuinely measured numbers, and so the
loop-order/layout phenomena the simulator models can be observed for real:
the invariant-hoisted ``ikj`` order beats ``ijk``, and the NumPy-vectorised
forms beat the interpreted loops by orders of magnitude.
"""

import numpy as np
import pytest

from repro.arrays.random import FillPolicy, make_gemm_operands
from repro.core.types import Layout, MatrixShape, Precision
from repro.kernels import (
    gemm_blocked,
    gemm_colwise,
    gemm_ijk,
    gemm_ikj,
    gemm_jki,
    gemm_rowwise,
    reference_gemm,
)

N_NAIVE = 48       # pure-Python loops: keep it honest but quick
N_VEC = 512        # NumPy-vectorised forms


def operands(n, layout=Layout.ROW_MAJOR):
    return make_gemm_operands(n, n, n, Precision.FP64, layout,
                              FillPolicy(seed=2023))


@pytest.mark.parametrize("kernel", [gemm_ijk, gemm_ikj, gemm_jki],
                         ids=["ijk", "ikj", "jki"])
def test_naive_loop_orders(benchmark, kernel):
    a, b, c = operands(N_NAIVE)
    expected = reference_gemm(a, b, Precision.FP64)

    def run():
        c[:] = 0.0
        kernel(a, b, c)
        return c

    result = benchmark(run)
    np.testing.assert_allclose(result, expected, rtol=1e-10)


@pytest.mark.parametrize("kernel,layout", [
    (gemm_rowwise, Layout.ROW_MAJOR),
    (gemm_colwise, Layout.COL_MAJOR),
], ids=["rowwise-C-order", "colwise-F-order"])
def test_vectorized_layout_matched(benchmark, kernel, layout):
    """Each vectorised form run on the layout it streams best."""
    a, b, c = operands(N_VEC, layout)
    expected = reference_gemm(a, b, Precision.FP64)

    def run():
        c[:] = 0.0
        kernel(a, b, c)
        return c

    result = benchmark(run)
    np.testing.assert_allclose(result, expected, rtol=1e-9)


def test_blocked_kernel(benchmark):
    a, b, c = operands(N_VEC)
    expected = reference_gemm(a, b, Precision.FP64)

    def run():
        c[:] = 0.0
        gemm_blocked(a, b, c, block=64)
        return c

    result = benchmark(run)
    np.testing.assert_allclose(result, expected, rtol=1e-9)


def test_numpy_reference(benchmark):
    """The BLAS ceiling the paper's hand-rolled kernels sit below."""
    a, b, _ = operands(N_VEC)
    result = benchmark(lambda: reference_gemm(a, b, Precision.FP64))
    assert result.shape == (N_VEC, N_VEC)
