"""E18 — the exhaustive variability analysis the paper skips.

Sec. IV reports single most-likely values "without doing an exhaustive
variability analysis", and explains the one result where a portable model
beats its vendor reference (Julia/AMDGPU.jl at FP32, Fig. 6b) as possibly
"simply ... the variability on this particular system".

Re-running the experiment under 25 independent noise seeds at the
Crusher-level run-to-run scatter (~3%) makes that conjecture testable:

* the across-seed spread of a sweep-averaged efficiency is well under 1%
  (averaging over sizes and repetitions suppresses the noise), so
* a persistent ~5% advantage sits >5 sigma from parity — run-to-run
  variability of the magnitude the harness (or any dedicated-node run)
  exhibits cannot produce it.  Either the system's variability is
  correlated across an entire sweep (a machine-state effect, not timing
  noise) or the advantage is a real codegen difference.

Table III itself is comfortably stable: every efficiency's across-seed
standard deviation is an order of magnitude below the 0.05 reproduction
tolerance.
"""

import pytest

from repro.core.types import Precision
from repro.harness import variance_study
from repro.harness.figures import (
    crusher_cpu_experiment,
    crusher_gpu_experiment,
)

SIZES = (4096, 8192, 16384)
SEEDS = 25


@pytest.fixture(scope="module")
def gpu_fp32():
    exp = crusher_gpu_experiment(Precision.FP32, sizes=SIZES)
    return variance_study(exp, "hip", models=("julia", "kokkos"), seeds=SEEDS)


def test_e18_distributions(benchmark, emit, gpu_fp32):
    out = benchmark(gpu_fp32.render)
    emit(out)


def test_julia_advantage_is_not_run_to_run_noise(gpu_fp32):
    dist = gpu_fp32.distribution("julia")
    assert dist.fraction_above(1.0) == 1.0
    assert dist.sigma_distance(1.0) > 5.0


def test_spread_far_below_reproduction_tolerance(gpu_fp32):
    for model in ("julia", "kokkos"):
        assert gpu_fp32.distribution(model).stdev < 0.01


def test_kokkos_never_reaches_parity(gpu_fp32):
    assert gpu_fp32.distribution("kokkos").maximum < 0.75


def test_cpu_efficiencies_stable_too():
    exp = crusher_cpu_experiment(Precision.FP64, sizes=SIZES)
    study = variance_study(exp, "c-openmp", models=("julia", "numba"),
                           seeds=10)
    for model in ("julia", "numba"):
        assert study.distribution(model).stdev < 0.02
