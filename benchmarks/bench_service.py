"""Campaign-service throughput: scheduler grants, submissions, dedup.

Times the three hot paths of the multi-tenant campaign daemon — the
fair-share scheduler's select/charge cycle (pure in-memory bookkeeping
that runs once per cell), campaign submission (admission + durable
journal open), and an overlapping two-tenant workload end to end (where
cross-campaign dedup should serve the second tenant's shared cells from
the first tenant's results) — plus the overload-robustness paths: the
shed decision a saturated daemon takes per submission attempt, the
idempotent answer a retried keyed submit converges on, and the latency
of expiring a deadline-lapsed campaign through the degraded path — and
writes the numbers to ``BENCH_service.json`` (re-run via
``make bench-service`` after touching ``src/repro/service`` to see
regressions).

The dedup section records the hit rate alongside cells/sec: a regression
that silently stops deduping would *look* fine on wall time for small
matrices while doubling the executed-cell count, so both numbers gate.

Standalone on purpose: ``python benchmarks/bench_service.py`` works with
or without the package installed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.core.types import DeviceKind, Precision          # noqa: E402
from repro.harness.engine import ResultCache                # noqa: E402
from repro.harness.experiment import Experiment             # noqa: E402
from repro.harness.journal import RunRegistry               # noqa: E402
from repro.service import (                                 # noqa: E402
    AdmissionPolicy,
    CampaignService,
    CampaignSpec,
    FairShareScheduler,
    TenantQuota,
)


def bench_experiment(exp_id: str, models=("julia", "numba")) -> Experiment:
    return Experiment(
        exp_id=exp_id, title="service throughput benchmark",
        node_name="Crusher", device=DeviceKind.CPU, precision=Precision.FP64,
        models=models, sizes=(256, 512, 1024), threads=64, reps=5,
    )


def bench_scheduler(grants: int, reps: int) -> "dict[str, object]":
    """Best-of-``reps`` time for ``grants`` select/charge cycles across
    an 8-tenant, 32-campaign backlog — the per-cell scheduling cost."""
    best = float("inf")
    for _ in range(reps):
        policy = AdmissionPolicy(
            max_total=64,
            quotas=tuple((f"t{i}", TenantQuota(weight=float(1 + i % 3)))
                         for i in range(8)))
        sched = FairShareScheduler(policy)
        for i in range(32):
            sched.submit(f"c{i}", f"t{i % 8}", priority=i % 4)
        t0 = time.perf_counter()
        for _ in range(grants):
            sched.charge(sched.select())
        best = min(best, time.perf_counter() - t0)
    return {
        "grants": grants,
        "tenants": 8,
        "backlog": 32,
        "seconds": round(best, 6),
        "grants_per_s": round(grants / best, 2),
    }


def bench_submissions(count: int, reps: int,
                      workdir: str) -> "dict[str, object]":
    """Submission latency: admission check plus the durable journal open
    that makes a queued campaign survive a daemon crash."""
    best = float("inf")
    for rep in range(reps):
        root = os.path.join(workdir, f"submit-{rep}")
        service = CampaignService(
            registry=RunRegistry(os.path.join(root, "runs")),
            cache=ResultCache(os.path.join(root, "cache")),
            policy=AdmissionPolicy(max_total=count + 1,
                                   default_quota=TenantQuota(
                                       max_queued=count + 1)))
        specs = [CampaignSpec(experiment=bench_experiment(f"sub-{i}"),
                              tenant=f"tenant-{i % 4}")
                 for i in range(count)]
        t0 = time.perf_counter()
        for spec in specs:
            service.submit(spec)
        best = min(best, time.perf_counter() - t0)
        service.suspend()
        shutil.rmtree(root, ignore_errors=True)
    return {
        "campaigns": count,
        "seconds": round(best, 6),
        "submissions_per_s": round(count / best, 2),
    }


def bench_dedup(reps: int, workdir: str) -> "dict[str, object]":
    """Two tenants with overlapping sweeps, end to end: cells/sec
    through the cell-at-a-time executor plus the dedup hit rate."""
    best = float("inf")
    hits = total = 0
    for rep in range(reps):
        root = os.path.join(workdir, f"dedup-{rep}")
        service = CampaignService(
            registry=RunRegistry(os.path.join(root, "runs")),
            cache=ResultCache(os.path.join(root, "cache")))
        shared = f"dedup-{rep}"
        spec_a = CampaignSpec(
            experiment=bench_experiment(shared, ("julia", "numba")),
            tenant="alice")
        spec_b = CampaignSpec(
            experiment=bench_experiment(shared, ("julia", "kokkos")),
            tenant="bob")
        t0 = time.perf_counter()
        service.submit(spec_a)
        service.submit(spec_b)
        service.run_until_idle()
        best = min(best, time.perf_counter() - t0)
        hits = service.dedup_hits
        total = sum(c.cells_total for c in service.campaigns.values())
        shutil.rmtree(root, ignore_errors=True)
    return {
        "cells": total,
        "dedup_hits": hits,
        "dedup_hit_rate": round(hits / total, 4) if total else 0.0,
        "seconds": round(best, 6),
        "cells_per_s": round(total / best, 2),
    }


def bench_shedding(attempts: int, reps: int,
                   workdir: str) -> "dict[str, object]":
    """Load-shedding decision rate on a saturated service: every
    ``check_overload`` against a backlog past the shed threshold must
    answer 429-with-``Retry-After`` without touching disk, so a storm
    costs the daemon microseconds per refusal, not a journal write."""
    from repro.errors import OverloadError

    best = float("inf")
    shed = 0
    retry_after = 0.0
    for rep in range(reps):
        root = os.path.join(workdir, f"shed-{rep}")
        service = CampaignService(
            registry=RunRegistry(os.path.join(root, "runs")),
            cache=ResultCache(os.path.join(root, "cache")),
            policy=AdmissionPolicy(max_total=8,
                                   default_quota=TenantQuota(max_queued=8)))
        for i in range(8):      # saturate: backlog 8 >= shed threshold 7
            service.submit(CampaignSpec(
                experiment=bench_experiment(f"shed-{rep}-{i}"),
                tenant=f"tenant-{i % 4}"))
        shed = 0
        service.shed_total = 0
        t0 = time.perf_counter()
        for _ in range(attempts):
            try:
                service.check_overload()
            except OverloadError as exc:
                shed += 1
                retry_after = exc.retry_after_s
        best = min(best, time.perf_counter() - t0)
        service.suspend()
        shutil.rmtree(root, ignore_errors=True)
    return {
        "attempts": attempts,
        "shed": shed,
        "shed_rate": round(shed / attempts, 4) if attempts else 0.0,
        "retry_after_s": retry_after,
        "seconds": round(best, 6),
        "sheds_per_s": round(attempts / best, 2),
    }


def bench_idempotent_retry(retries: int, reps: int,
                           workdir: str) -> "dict[str, object]":
    """Retried-submit convergence: after one keyed submission, every
    retry of the same spec must answer the original id from the
    in-memory idempotency map — no admission, no journal, no disk."""
    import dataclasses

    best = float("inf")
    converged = False
    first_retry_s = 0.0
    for rep in range(reps):
        root = os.path.join(workdir, f"idem-{rep}")
        service = CampaignService(
            registry=RunRegistry(os.path.join(root, "runs")),
            cache=ResultCache(os.path.join(root, "cache")))
        spec = dataclasses.replace(
            CampaignSpec(experiment=bench_experiment(f"idem-{rep}")),
            submission_key=f"idem-{rep}")
        original = service.submit(spec)
        t0 = time.perf_counter()
        answer = service.submit(spec)
        first_retry_s = min(first_retry_s or float("inf"),
                            time.perf_counter() - t0)
        converged = answer == original
        t0 = time.perf_counter()
        for _ in range(retries):
            service.submit(spec)
        best = min(best, time.perf_counter() - t0)
        converged = converged and service.duplicates_total == retries + 1
        service.suspend()
        shutil.rmtree(root, ignore_errors=True)
    return {
        "retries": retries,
        "converged": converged,
        "first_retry_s": round(first_retry_s, 6),
        "seconds": round(best, 6),
        "duplicates_per_s": round(retries / best, 2),
    }


def bench_deadline(reps: int, workdir: str) -> "dict[str, object]":
    """Deadline-expiry latency: seconds from the scheduler granting a
    deadline-lapsed campaign to its terminal ``expired`` state — the
    degraded path journals one failed measurement per remaining cell,
    so this scales with campaign size and gates how fast a stormed
    daemon clears doomed work."""
    import dataclasses

    best = float("inf")
    cells = 0
    for rep in range(reps):
        root = os.path.join(workdir, f"deadline-{rep}")
        service = CampaignService(
            registry=RunRegistry(os.path.join(root, "runs")),
            cache=ResultCache(os.path.join(root, "cache")))
        spec = dataclasses.replace(
            CampaignSpec(experiment=bench_experiment(
                f"deadline-{rep}", ("julia", "numba", "kokkos"))),
            submission_key=f"deadline-{rep}", deadline_s=0.001)
        cid = service.submit(spec)
        time.sleep(0.002)       # let the deadline lapse before the grant
        t0 = time.perf_counter()
        service.run_until_idle()
        elapsed = time.perf_counter() - t0
        campaign = service.campaigns[cid]
        if campaign.state != "expired":
            raise RuntimeError(f"deadline campaign ended {campaign.state!r},"
                               " expected 'expired'")
        best = min(best, elapsed)
        cells = campaign.cells_total
        shutil.rmtree(root, ignore_errors=True)
    return {
        "cells": cells,
        "seconds": round(best, 6),
        "expiries_per_s": round(cells / best, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions; best-of is recorded (default 3)")
    parser.add_argument("--grants", type=int, default=20000,
                        help="scheduler select/charge cycles (default 20000)")
    parser.add_argument("--submissions", type=int, default=32,
                        help="campaigns per submission rep (default 32)")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output path (default BENCH_service.json)")
    args = parser.parse_args(argv)

    payload = {"benchmark": "service",
               "python": platform.python_version(),
               "host_cpus": os.cpu_count() or 1,
               "reps": args.reps,
               "sections": {}}
    workdir = tempfile.mkdtemp(prefix="bench-service-")
    try:
        result = bench_scheduler(args.grants, args.reps)
        payload["sections"]["scheduler"] = result
        print(f"scheduler   {result['grants_per_s']:>12} grants/s "
              f"({result['backlog']} campaigns, {result['tenants']} tenants)")

        result = bench_submissions(args.submissions, args.reps, workdir)
        payload["sections"]["submissions"] = result
        print(f"submit      {result['submissions_per_s']:>12} campaigns/s "
              f"(durable journal per submission)")

        result = bench_dedup(args.reps, workdir)
        payload["sections"]["dedup"] = result
        print(f"dedup       {result['cells_per_s']:>12} cells/s "
              f"(hit rate {result['dedup_hit_rate']:.0%})")

        result = bench_shedding(args.submissions * 100, args.reps, workdir)
        payload["sections"]["shedding"] = result
        print(f"shed        {result['sheds_per_s']:>12} refusals/s "
              f"(shed rate {result['shed_rate']:.0%}, "
              f"retry-after {result['retry_after_s']:g}s)")

        result = bench_idempotent_retry(args.submissions * 10, args.reps,
                                        workdir)
        payload["sections"]["idempotent_retry"] = result
        print(f"idempotent  {result['duplicates_per_s']:>12} retries/s "
              f"(first retry converged in {result['first_retry_s']*1e6:.0f}"
              f" us)")

        result = bench_deadline(args.reps, workdir)
        payload["sections"]["deadline"] = result
        print(f"deadline    {result['expiries_per_s']:>12} cell expiries/s "
              f"({result['cells']} cells expired in "
              f"{result['seconds']*1e3:.1f} ms)")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
