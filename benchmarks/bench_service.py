"""Campaign-service throughput: scheduler grants, submissions, dedup.

Times the three hot paths of the multi-tenant campaign daemon — the
fair-share scheduler's select/charge cycle (pure in-memory bookkeeping
that runs once per cell), campaign submission (admission + durable
journal open), and an overlapping two-tenant workload end to end (where
cross-campaign dedup should serve the second tenant's shared cells from
the first tenant's results) — and writes the numbers to
``BENCH_service.json`` (re-run via ``make bench-service`` after touching
``src/repro/service`` to see regressions).

The dedup section records the hit rate alongside cells/sec: a regression
that silently stops deduping would *look* fine on wall time for small
matrices while doubling the executed-cell count, so both numbers gate.

Standalone on purpose: ``python benchmarks/bench_service.py`` works with
or without the package installed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.core.types import DeviceKind, Precision          # noqa: E402
from repro.harness.engine import ResultCache                # noqa: E402
from repro.harness.experiment import Experiment             # noqa: E402
from repro.harness.journal import RunRegistry               # noqa: E402
from repro.service import (                                 # noqa: E402
    AdmissionPolicy,
    CampaignService,
    CampaignSpec,
    FairShareScheduler,
    TenantQuota,
)


def bench_experiment(exp_id: str, models=("julia", "numba")) -> Experiment:
    return Experiment(
        exp_id=exp_id, title="service throughput benchmark",
        node_name="Crusher", device=DeviceKind.CPU, precision=Precision.FP64,
        models=models, sizes=(256, 512, 1024), threads=64, reps=5,
    )


def bench_scheduler(grants: int, reps: int) -> "dict[str, object]":
    """Best-of-``reps`` time for ``grants`` select/charge cycles across
    an 8-tenant, 32-campaign backlog — the per-cell scheduling cost."""
    best = float("inf")
    for _ in range(reps):
        policy = AdmissionPolicy(
            max_total=64,
            quotas=tuple((f"t{i}", TenantQuota(weight=float(1 + i % 3)))
                         for i in range(8)))
        sched = FairShareScheduler(policy)
        for i in range(32):
            sched.submit(f"c{i}", f"t{i % 8}", priority=i % 4)
        t0 = time.perf_counter()
        for _ in range(grants):
            sched.charge(sched.select())
        best = min(best, time.perf_counter() - t0)
    return {
        "grants": grants,
        "tenants": 8,
        "backlog": 32,
        "seconds": round(best, 6),
        "grants_per_s": round(grants / best, 2),
    }


def bench_submissions(count: int, reps: int,
                      workdir: str) -> "dict[str, object]":
    """Submission latency: admission check plus the durable journal open
    that makes a queued campaign survive a daemon crash."""
    best = float("inf")
    for rep in range(reps):
        root = os.path.join(workdir, f"submit-{rep}")
        service = CampaignService(
            registry=RunRegistry(os.path.join(root, "runs")),
            cache=ResultCache(os.path.join(root, "cache")),
            policy=AdmissionPolicy(max_total=count + 1,
                                   default_quota=TenantQuota(
                                       max_queued=count + 1)))
        specs = [CampaignSpec(experiment=bench_experiment(f"sub-{i}"),
                              tenant=f"tenant-{i % 4}")
                 for i in range(count)]
        t0 = time.perf_counter()
        for spec in specs:
            service.submit(spec)
        best = min(best, time.perf_counter() - t0)
        service.suspend()
        shutil.rmtree(root, ignore_errors=True)
    return {
        "campaigns": count,
        "seconds": round(best, 6),
        "submissions_per_s": round(count / best, 2),
    }


def bench_dedup(reps: int, workdir: str) -> "dict[str, object]":
    """Two tenants with overlapping sweeps, end to end: cells/sec
    through the cell-at-a-time executor plus the dedup hit rate."""
    best = float("inf")
    hits = total = 0
    for rep in range(reps):
        root = os.path.join(workdir, f"dedup-{rep}")
        service = CampaignService(
            registry=RunRegistry(os.path.join(root, "runs")),
            cache=ResultCache(os.path.join(root, "cache")))
        shared = f"dedup-{rep}"
        spec_a = CampaignSpec(
            experiment=bench_experiment(shared, ("julia", "numba")),
            tenant="alice")
        spec_b = CampaignSpec(
            experiment=bench_experiment(shared, ("julia", "kokkos")),
            tenant="bob")
        t0 = time.perf_counter()
        service.submit(spec_a)
        service.submit(spec_b)
        service.run_until_idle()
        best = min(best, time.perf_counter() - t0)
        hits = service.dedup_hits
        total = sum(c.cells_total for c in service.campaigns.values())
        shutil.rmtree(root, ignore_errors=True)
    return {
        "cells": total,
        "dedup_hits": hits,
        "dedup_hit_rate": round(hits / total, 4) if total else 0.0,
        "seconds": round(best, 6),
        "cells_per_s": round(total / best, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions; best-of is recorded (default 3)")
    parser.add_argument("--grants", type=int, default=20000,
                        help="scheduler select/charge cycles (default 20000)")
    parser.add_argument("--submissions", type=int, default=32,
                        help="campaigns per submission rep (default 32)")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output path (default BENCH_service.json)")
    args = parser.parse_args(argv)

    payload = {"benchmark": "service",
               "python": platform.python_version(),
               "host_cpus": os.cpu_count() or 1,
               "reps": args.reps,
               "sections": {}}
    workdir = tempfile.mkdtemp(prefix="bench-service-")
    try:
        result = bench_scheduler(args.grants, args.reps)
        payload["sections"]["scheduler"] = result
        print(f"scheduler   {result['grants_per_s']:>12} grants/s "
              f"({result['backlog']} campaigns, {result['tenants']} tenants)")

        result = bench_submissions(args.submissions, args.reps, workdir)
        payload["sections"]["submissions"] = result
        print(f"submit      {result['submissions_per_s']:>12} campaigns/s "
              f"(durable journal per submission)")

        result = bench_dedup(args.reps, workdir)
        payload["sections"]["dedup"] = result
        print(f"dedup       {result['cells_per_s']:>12} cells/s "
              f"(hit rate {result['dedup_hit_rate']:.0%})")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
