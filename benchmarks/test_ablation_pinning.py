"""E9 — ablation: thread pinning across NUMA domains.

Sec. IV-A attributes part of Numba's CPU gap to the missing pinning API:
"OpenMP and Julia use environment flags to bind threads to CPU resources
...; this option is not available in the Python/Numba APIs."  This
ablation runs the *same* kernel pinned and unpinned on both CPUs: the
penalty exists only on the 4-NUMA EPYC, not on the single-NUMA Altra —
exactly the asymmetry between the paper's Figs. 4 and 5.
"""

import pytest

from repro.core.types import MatrixShape, Precision
from repro.ir import builder
from repro.ir.passes import UnrollInnerLoop, VectorizeInnerLoop
from repro.machine import AMPERE_ALTRA, EPYC_7A53
from repro.sched.affinity import PinPolicy
from repro.sim.executor import simulate_cpu_kernel

SHAPE = MatrixShape.square(4096)


def run(cpu, threads, pin):
    k = builder.c_openmp_cpu(Precision.FP64)
    k = VectorizeInnerLoop(cpu.simd_lanes(Precision.FP64)).run(k)
    k = UnrollInnerLoop(4).run(k)
    t = simulate_cpu_kernel(k, cpu, SHAPE, threads, pin=pin)
    return t.gflops(SHAPE)


def test_pinning_sweep(benchmark, emit):
    def sweep():
        return {
            (cpu.name, pin.value): run(cpu, threads, pin)
            for cpu, threads in ((EPYC_7A53, 64), (AMPERE_ALTRA, 80))
            for pin in (PinPolicy.COMPACT, PinPolicy.SPREAD, PinPolicy.NONE)
        }
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["cpu                 policy   GFLOP/s"]
    for (cpu, pin), gf in rows.items():
        lines.append(f"{cpu:18s}  {pin:7s}  {gf:7.0f}")
    emit("\n".join(lines))


def test_unpinned_penalty_on_epyc():
    pinned = run(EPYC_7A53, 64, PinPolicy.COMPACT)
    unpinned = run(EPYC_7A53, 64, PinPolicy.NONE)
    assert unpinned < 0.85 * pinned


def test_no_penalty_on_single_numa_altra():
    pinned = run(AMPERE_ALTRA, 80, PinPolicy.COMPACT)
    unpinned = run(AMPERE_ALTRA, 80, PinPolicy.NONE)
    assert unpinned == pytest.approx(pinned, rel=0.05)


def test_spread_equivalent_for_saturated_node():
    """With every core busy, compact vs spread placement is a wash."""
    compact = run(EPYC_7A53, 64, PinPolicy.COMPACT)
    spread = run(EPYC_7A53, 64, PinPolicy.SPREAD)
    assert spread == pytest.approx(compact, rel=0.05)
