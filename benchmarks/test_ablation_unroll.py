"""E8 — ablation: the CUDA.jl unroll-2 vs nvcc unroll-4 PTX finding.

Sec. IV-B attributes CUDA.jl's constant overhead on the A100 to "a
difference in unrolled loop instructions, 2 for CUDA.jl and 4 in the
native CUDA".  This ablation sweeps the unroll factor on otherwise
identical kernels and shows the gap the paper measured is the gap
unrolling explains.
"""

import pytest

from repro.core.types import Layout, MatrixShape, Precision
from repro.gpu import IssueProfile, paper_launch, simulate_gpu_kernel
from repro.ir import builder
from repro.ir.passes import UnrollInnerLoop
from repro.machine import A100

SHAPE = MatrixShape.square(8192)

#: CUDA.jl's extra inner-loop index arithmetic (see repro.models.julia).
JULIA_PROFILE = IssueProfile(issue_multiplier=1.16, extra_int_per_iter=14.0)


def run_unroll(unroll: int, profile: IssueProfile = IssueProfile()):
    kernel = builder.gpu_thread_per_element("gemm", Precision.FP64,
                                            Layout.ROW_MAJOR)
    kernel = UnrollInnerLoop(unroll).run(kernel)
    t = simulate_gpu_kernel(kernel, paper_launch("j"), A100, SHAPE, profile)
    return t.gflops(SHAPE)


def test_unroll_sweep(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: [(u, run_unroll(u), run_unroll(u, JULIA_PROFILE))
                 for u in (1, 2, 4, 8)],
        rounds=1, iterations=1)
    lines = ["unroll  nvcc-quality GF  CUDA.jl-quality GF"]
    for u, vendor, julia in rows:
        lines.append(f"{u:6d}  {vendor:15.0f}  {julia:18.0f}")
    emit("\n".join(lines))


def test_unroll_monotone_non_decreasing():
    perf = [run_unroll(u) for u in (1, 2, 4)]
    assert perf[0] <= perf[1] <= perf[2]


def test_julia_codegen_reproduces_measured_gap():
    """The full CUDA.jl codegen delta (unroll 2 + index-arithmetic surplus
    + scheduling quality) lands at the measured ~0.87 of vendor CUDA."""
    vendor4 = run_unroll(4)
    julia2 = run_unroll(2, JULIA_PROFILE)
    assert julia2 / vendor4 == pytest.approx(0.87, abs=0.05)


def test_unroll_alone_does_not_explain_the_gap():
    """A finding of the reproduction (recorded in EXPERIMENTS.md): giving
    the CUDA.jl-quality codegen the vendor's unroll factor recovers almost
    nothing, because the FP64 kernel is L2-bandwidth-bound and the unroll
    only amortises loop control.  The PTX unroll difference the paper saw
    is a *symptom* of the less mature codegen; the cost is carried by the
    accompanying per-iteration instruction surplus."""
    julia2 = run_unroll(2, JULIA_PROFILE)
    julia4 = run_unroll(4, JULIA_PROFILE)
    vendor4 = run_unroll(4)
    assert julia4 < 1.05 * julia2          # unrolling alone: <5% back
    # dropping the instruction surplus (same unroll 2) recovers the gap
    clean2 = run_unroll(2, IssueProfile(issue_multiplier=1.0,
                                        extra_int_per_iter=0.0))
    assert clean2 > 0.95 * vendor4


def test_gpu_chain_always_hidden_by_occupancy():
    """A model check worth pinning: at any launchable occupancy the warp
    scheduler hides the FMA latency chain (resident_warps x issue >> FMA
    latency), so a GPU kernel is never chain-bound — the reason the strict
    FP accumulation that cripples a scalar CPU reduction costs nothing in
    Fig. 3's kernels."""
    for unroll in (1, 2, 4):
        kernel = UnrollInnerLoop(unroll).run(
            builder.gpu_thread_per_element("gemm", Precision.FP64,
                                           Layout.ROW_MAJOR))
        t = simulate_gpu_kernel(kernel, paper_launch("j"), A100, SHAPE)
        assert t.bound != "chain"


def test_cpu_chain_bound_is_where_unroll_pays():
    """Counterpart on the CPU: a strict-FP per-element reduction (the
    Kokkos lambda shape without fastmath) is FMA-latency-chained, and
    fastmath + unroll recovers multiples, not percents."""
    from repro.machine import EPYC_7A53
    from repro.sim.executor import cpu_cycles_total

    strict = builder.kokkos_cpu(Precision.FP64)  # scalar accum over k
    chained = cpu_cycles_total(strict, SHAPE, EPYC_7A53)
    unrolled = cpu_cycles_total(
        UnrollInnerLoop(8).run(strict.replace(fastmath=True)),
        SHAPE, EPYC_7A53)
    assert chained > 2 * unrolled
