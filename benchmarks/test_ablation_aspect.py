"""E17 — ablation: non-square GEMM shapes.

The paper (like its artifact) sweeps only square problems.  This ablation
holds the flop count fixed (F = 2*M*N*K ~= 2*4096^3) and skews the aspect
ratio, exposing two structural effects the square sweep hides:

* **worksharing imbalance**: the CPU models parallelise one specific loop
  (rows for C/Numba/Kokkos, columns for Julia), so a shape that shrinks
  *that* dimension below the thread count starves them — and it is a
  *different* shape for Julia (small N) than for C (small M);
* **GPU tail quantisation**: a short grid dimension wastes whole waves.
"""

import pytest

from repro.core.types import Layout, MatrixShape, Precision
from repro.gpu import paper_launch, simulate_gpu_kernel
from repro.ir import builder
from repro.ir.passes import UnrollInnerLoop, VectorizeInnerLoop
from repro.machine import A100, EPYC_7A53
from repro.models import model_by_name
from repro.sim.executor import simulate_cpu_kernel

#: Shapes with identical flops (2 * 2^36): square, tall-skinny, short-fat.
SHAPES = {
    "square 4096^3": MatrixShape(4096, 4096, 4096),
    "tall M=2^18": MatrixShape(262144, 512, 512),
    "wide N=2^18": MatrixShape(512, 262144, 512),
    "deep K=2^18": MatrixShape(512, 512, 262144),
    "starved M=32": MatrixShape(32, 8192, 262144),
}


def _cpu_gflops(model_name: str, shape: MatrixShape) -> float:
    model = model_by_name(model_name)
    low = model.lower_cpu(EPYC_7A53, Precision.FP64)
    t = simulate_cpu_kernel(low.kernel, EPYC_7A53, shape, 64,
                            pin=low.pin, profile=low.profile)
    return t.gflops(shape)


def _gpu_gflops(shape: MatrixShape) -> float:
    k = UnrollInnerLoop(4).run(
        builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR))
    t = simulate_gpu_kernel(k, paper_launch("j"), A100, shape)
    return t.gflops(shape)


def test_e17_aspect_sweep(benchmark, emit):
    def sweep():
        rows = []
        for label, shape in SHAPES.items():
            rows.append((label, _cpu_gflops("c-openmp", shape),
                         _cpu_gflops("julia", shape), _gpu_gflops(shape)))
        return rows
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'shape':16s} {'C/OpenMP GF':>12s} {'Julia GF':>9s} {'CUDA GF':>8s}"]
    for label, c, j, g in rows:
        lines.append(f"{label:16s} {c:12.0f} {j:9.0f} {g:8.0f}")
    emit("\n".join(lines))


def test_row_parallel_models_starve_on_small_m():
    """32 rows across 64 threads: half the node idles for C/OpenMP."""
    square = _cpu_gflops("c-openmp", SHAPES["square 4096^3"])
    starved = _cpu_gflops("c-openmp", SHAPES["starved M=32"])
    assert starved < 0.6 * square


def test_julia_starves_on_the_other_axis():
    """Julia parallelises columns: small M is fine, small N is not."""
    small_m = MatrixShape(32, 8192, 262144)
    small_n = MatrixShape(8192, 32, 262144)
    julia_small_m = _cpu_gflops("julia", small_m)
    julia_small_n = _cpu_gflops("julia", small_n)
    # 32 columns over 64 threads leaves half of them idle (2x imbalance)
    assert julia_small_m > 1.25 * julia_small_n
    # and the asymmetry is the mirror image of C/OpenMP's
    c_small_m = _cpu_gflops("c-openmp", small_m)
    c_small_n = _cpu_gflops("c-openmp", small_n)
    assert c_small_n > 1.15 * c_small_m


def test_equal_flops_square_is_safe():
    """No skewed shape beats the square one by much on either device —
    the paper's square sweep is a fair apples-to-apples choice."""
    square_cpu = _cpu_gflops("c-openmp", SHAPES["square 4096^3"])
    square_gpu = _gpu_gflops(SHAPES["square 4096^3"])
    for label in ("tall M=2^18", "wide N=2^18", "deep K=2^18"):
        assert _cpu_gflops("c-openmp", SHAPES[label]) < 1.15 * square_cpu
        assert _gpu_gflops(SHAPES[label]) < 1.15 * square_gpu
