"""Static-analysis throughput: lanes/sec for the lint and audit sweeps.

Both sweeps are pure Python over the IR — no simulator runs — so their
cost is the price CI pays per push for the ``make lint`` and ``make
audit`` gates.  This script times both over the full model x device x
precision matrix and writes the numbers to ``BENCH_static_analysis.json``
(the repo's first recorded benchmark trajectory; re-run via ``make
bench-audit`` after touching the analyses to see regressions).

Standalone on purpose: ``python benchmarks/bench_static_analysis.py``
works with or without the package installed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

if __package__ in (None, ""):
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path:
        sys.path.insert(0, _src)

from repro.ir.audit import audit_registry            # noqa: E402
from repro.ir.lint import lint_registry              # noqa: E402


def _time_sweep(fn, reps: int) -> "tuple[float, int]":
    """Best-of-``reps`` wall time and the sweep's lane count."""
    best = float("inf")
    lanes = 0
    for _ in range(reps):
        t0 = time.perf_counter()
        results = fn()
        best = min(best, time.perf_counter() - t0)
        lanes = len(results)
    return best, lanes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions; best-of is recorded (default 3)")
    parser.add_argument("--out", default="BENCH_static_analysis.json",
                        help="output path (default BENCH_static_analysis.json)")
    args = parser.parse_args(argv)

    payload = {"benchmark": "static_analysis",
               "python": platform.python_version(),
               "reps": args.reps,
               "sweeps": {}}
    for kind, fn in (("lint", lint_registry), ("audit", audit_registry)):
        seconds, lanes = _time_sweep(fn, args.reps)
        payload["sweeps"][kind] = {
            "lanes": lanes,
            "best_seconds": round(seconds, 4),
            "lanes_per_second": round(lanes / seconds, 1),
        }
        print(f"{kind:5s}: {lanes} lanes in {seconds:.3f} s "
              f"({lanes / seconds:.0f} lanes/s, best of {args.reps})")

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
